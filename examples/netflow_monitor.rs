//! NetFlow-style traffic monitor — the paper's motivating application.
//!
//! Streams a synthetic switch-fabric trace (the Figure 6 stand-in)
//! through the timed flow engine with the engine-level idle-TTL
//! [`ExpiryPolicy`] enabled, then prints a NetFlow-style report: top
//! flows by packet count, expiry statistics, and the typed
//! [`FlowEvent`] stream a collector would export records from.
//!
//! Run with: `cargo run --release --example netflow_monitor`

use flowlut::core::{ExpiryPolicy, FlowLutSim, SimConfig};
use flowlut::traffic::fabric::FabricTraceProfile;
use flowlut::{FlowEventKind, FlowPipeline};

fn main() {
    let mut cfg = SimConfig::test_small();
    // A mid-size table and an aggressive idle timeout so expiry is
    // visible within a short example run. The expiry scan is incremental
    // — `scan_stride` records per cycle, never a stop-the-world sweep.
    cfg.table.buckets_per_mem = 16_384;
    cfg.table.cam_capacity = 512;
    cfg.geometry.rows = 1024;
    cfg.expiry = Some(ExpiryPolicy {
        idle_timeout_cycles: 40_000, // 200 us at the 5 ns system clock
        scan_stride: 8,
    });
    let mut sim = FlowLutSim::new(cfg);

    let trace = FabricTraceProfile::european_2012().generate(30_000);
    println!(
        "streaming {} packets from the synthetic fabric trace...",
        trace.len()
    );
    let report = sim.run(&trace);

    println!("\n== engine report ==");
    println!("  processing rate : {:.2} Mdesc/s", report.mdesc_per_s);
    println!(
        "  new flows       : {} ({} to CAM)",
        report.stats.inserted_mem + report.stats.inserted_cam,
        report.stats.inserted_cam
    );
    println!(
        "  matches         : {} LU1, {} LU2, {} CAM",
        report.stats.lu1_hits, report.stats.lu2_hits, report.stats.cam_hits
    );
    println!("  expired (idle TTL)     : {}", report.stats.expired_ttl);
    println!("  drops (table full)     : {}", report.stats.drops);

    // NetFlow-style top talkers.
    let mut records: Vec<_> = sim.flow_state().iter().map(|(id, r)| (id, *r)).collect();
    records.sort_by_key(|(_, r)| std::cmp::Reverse(r.packets));
    println!("\n== top 10 live flows by packets ==");
    println!(
        "{:<14} {:>8} {:>10} {:>12}",
        "flow id", "packets", "bytes", "duration us"
    );
    for (id, r) in records.iter().take(10) {
        println!(
            "{:<14} {:>8} {:>10} {:>12.1}",
            id.to_string(),
            r.packets,
            r.bytes,
            r.duration_ns() as f64 / 1000.0
        );
    }

    let live = sim.flow_state().len();
    let table = sim.table().len();
    println!("\nlive flows: {live} (table holds {table})");
    assert_eq!(live as u64, table, "records and table must agree");

    // Idle-time advance: no packets arrive, so every flow ages past the
    // 200 us idle timeout and the incremental scan sweeps them out,
    // raising one typed event per expiry — the export trigger a NetFlow
    // collector keys on.
    sim.tick_many(200_000);
    let events = FlowPipeline::poll_events(&mut sim);
    let expiries = events
        .iter()
        .filter(|e| e.kind == FlowEventKind::ExpiredTtl)
        .count();
    println!(
        "after 1 ms idle: {} live flows, {} expiry events delivered, {} expired in total",
        sim.flow_state().len(),
        expiries,
        sim.stats().expired_ttl
    );
    if let Some(e) = events.first() {
        println!(
            "first event: {:?} key {:?} at cycle {}",
            e.kind, e.key, e.now_sys
        );
    }
    assert!(
        sim.flow_state().len() < live,
        "idle flows must expire during the idle stretch"
    );
    assert_eq!(sim.flow_state().len() as u64, sim.table().len());
}
