//! NetFlow-style traffic monitor — the paper's motivating application.
//!
//! Streams a synthetic switch-fabric trace (the Figure 6 stand-in)
//! through the timed flow engine with housekeeping enabled, then prints
//! a NetFlow-style report: top flows by packet count, flow-duration
//! spread, and expiry statistics.
//!
//! Run with: `cargo run --release --example netflow_monitor`

use flowlut::core::{FlowLutSim, SimConfig};
use flowlut::traffic::fabric::FabricTraceProfile;

fn main() {
    let mut cfg = SimConfig::test_small();
    // A mid-size table and aggressive housekeeping so expiry is visible
    // within a short example run.
    cfg.table.buckets_per_mem = 16_384;
    cfg.table.cam_capacity = 512;
    cfg.geometry.rows = 1024;
    cfg.housekeeping_period_sys = 5_000;
    cfg.flow_timeout_ns = 200_000; // 200 us idle timeout
    let mut sim = FlowLutSim::new(cfg);

    let trace = FabricTraceProfile::european_2012().generate(30_000);
    println!(
        "streaming {} packets from the synthetic fabric trace...",
        trace.len()
    );
    let report = sim.run(&trace);

    println!("\n== engine report ==");
    println!("  processing rate : {:.2} Mdesc/s", report.mdesc_per_s);
    println!(
        "  new flows       : {} ({} to CAM)",
        report.stats.inserted_mem + report.stats.inserted_cam,
        report.stats.inserted_cam
    );
    println!(
        "  matches         : {} LU1, {} LU2, {} CAM",
        report.stats.lu1_hits, report.stats.lu2_hits, report.stats.cam_hits
    );
    println!(
        "  expired by housekeeping: {}",
        report.stats.housekeeping_expired
    );
    println!("  drops (table full)     : {}", report.stats.drops);

    // NetFlow-style top talkers.
    let mut records: Vec<_> = sim.flow_state().iter().map(|(id, r)| (id, *r)).collect();
    records.sort_by_key(|(_, r)| std::cmp::Reverse(r.packets));
    println!("\n== top 10 live flows by packets ==");
    println!(
        "{:<14} {:>8} {:>10} {:>12}",
        "flow id", "packets", "bytes", "duration us"
    );
    for (id, r) in records.iter().take(10) {
        println!(
            "{:<14} {:>8} {:>10} {:>12.1}",
            id.to_string(),
            r.packets,
            r.bytes,
            r.duration_ns() as f64 / 1000.0
        );
    }

    let live = sim.flow_state().len();
    let table = sim.table().len();
    println!("\nlive flows: {live} (table holds {table})");
    assert_eq!(live as u64, table, "records and table must agree");

    // Idle-time advance: no packets arrive, so the whole stretch can be
    // stepped in one epoch-batched call. Half a millisecond of silence
    // puts every flow past the 200 us idle timeout, and the
    // housekeeping scans sweep them out.
    sim.tick_many(100_000);
    println!(
        "after 0.5 ms idle: {} live flows, {} expired by housekeeping in total",
        sim.flow_state().len(),
        sim.stats().housekeeping_expired
    );
    assert!(
        sim.flow_state().len() < live,
        "idle flows must expire during the idle stretch"
    );
    assert_eq!(sim.flow_state().len() as u64, sim.table().len());
}
