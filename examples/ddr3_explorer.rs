//! DDR3 timing explorer: why the paper's scheduling machinery exists.
//!
//! Demonstrates, with the raw memory model, the three effects the flow
//! LUT's DLU is built around: row hits vs row conflicts, bank
//! interleaving, and read/write turnaround (Figure 3).
//!
//! Run with: `cargo run --release --example ddr3_explorer`

use flowlut::ddr3::bus::{analytic_utilization, TurnaroundModel};
use flowlut::ddr3::{
    AddressMapping, ControllerConfig, Geometry, MemAddress, MemRequest, MemoryController,
    TimingPreset,
};

fn drain_cycles(pattern: impl Fn(u64) -> MemAddress, n: u64) -> (u64, f64) {
    let geometry = Geometry::prototype_512mb();
    let mapping = AddressMapping::RowBankCol;
    let mut ctrl = MemoryController::new(ControllerConfig {
        timing: TimingPreset::Ddr3_1600.params(),
        geometry,
        refresh_enabled: false,
        queue_capacity: 64,
        ..ControllerConfig::default()
    });
    let mut issued = 0u64;
    let mut i = 0u64;
    while issued < n {
        let addr = mapping.compose(&geometry, pattern(i));
        if ctrl.enqueue(MemRequest::read(i, addr)).is_ok() {
            issued += 1;
            i += 1;
        } else {
            ctrl.tick();
        }
    }
    while !ctrl.is_drained() {
        ctrl.tick();
    }
    let hit_rate = ctrl.device().stats().row_hit_rate();
    (ctrl.now(), hit_rate)
}

fn main() {
    let n = 512;
    println!("== effect 1: row locality ({n} reads, DDR3-1600) ==");
    let (hit_cycles, hit_rate) = drain_cycles(
        |i| MemAddress {
            bank: 0,
            row: 0,
            col: (i % 128) as u32,
        },
        n,
    );
    println!(
        "  same row, same bank   : {hit_cycles:>6} cycles (row-hit rate {:.0}%)",
        hit_rate * 100.0
    );
    let (conflict_cycles, _) = drain_cycles(
        |i| MemAddress {
            bank: 0,
            row: (i % 16_384) as u32,
            col: 0,
        },
        n,
    );
    println!(
        "  new row, same bank    : {conflict_cycles:>6} cycles ({:.1}x slower: the tRC penalty)",
        conflict_cycles as f64 / hit_cycles as f64
    );

    println!("\n== effect 2: bank interleaving ==");
    let (interleaved_cycles, _) = drain_cycles(
        |i| MemAddress {
            bank: (i % 8) as u32,
            row: ((i / 8) % 16_384) as u32,
            col: 0,
        },
        n,
    );
    println!(
        "  new row, 8 banks      : {interleaved_cycles:>6} cycles ({:.1}x better than one bank)",
        conflict_cycles as f64 / interleaved_cycles as f64
    );
    println!("  -> this recovery is what the Bank Selector buys for random hashes");

    println!("\n== effect 3: read/write turnaround (Figure 3) ==");
    let timing = TimingPreset::Ddr3_1066E.params();
    let model = TurnaroundModel::default();
    for bursts in [1u32, 2, 5, 10, 20, 35] {
        let u = analytic_utilization(&timing, &model, bursts);
        println!(
            "  {bursts:>2} bursts per direction: {:>5.1}% DQ utilization",
            u * 100.0
        );
    }
    println!("  -> growing same-direction groups is what BWr_Gen + Mem Ctrl grouping buy");
}
