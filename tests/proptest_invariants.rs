//! Property-based invariants spanning the workspace: the Hash-CAM table
//! against a reference model, wire-format round trips, flow-ID packing,
//! and DDR3 data integrity under random schedules.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use flowlut::core::codec;
use flowlut::core::fid::{FlowId, Location, PathId};
use flowlut::core::{HashCamTable, InsertError, TableConfig};
use flowlut::ddr3::{ControllerConfig, Geometry, MemRequest, MemoryController, TimingPreset};
use flowlut::traffic::{FiveTuple, FlowKey};

fn key_strategy() -> impl Strategy<Value = FlowKey> {
    // Small index space so sequences revisit keys (exercising duplicate
    // and delete paths).
    (0u64..64).prop_map(|i| FlowKey::from(FiveTuple::from_index(i)))
}

#[derive(Debug, Clone)]
enum Op {
    Insert(FlowKey),
    Delete(FlowKey),
    Lookup(FlowKey),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        key_strategy().prop_map(Op::Insert),
        key_strategy().prop_map(Op::Delete),
        key_strategy().prop_map(Op::Lookup),
    ]
}

proptest! {
    /// The Hash-CAM table behaves exactly like a set, for any operation
    /// sequence, as long as capacity is not exhausted.
    #[test]
    fn table_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut table = HashCamTable::new(TableConfig {
            buckets_per_mem: 64,
            entries_per_bucket: 2,
            cam_capacity: 64, // roomy: 64-key universe cannot overflow
            entry_slot_bytes: 16,
            hash_seed: 99,
        });
        let mut model: HashSet<FlowKey> = HashSet::new();
        let mut ids: HashMap<FlowKey, FlowId> = HashMap::new();

        for op in ops {
            match op {
                Op::Insert(k) => match table.insert(k) {
                    Ok(fid) => {
                        prop_assert!(model.insert(k), "table accepted duplicate");
                        ids.insert(k, fid);
                    }
                    Err(InsertError::Duplicate(fid)) => {
                        prop_assert!(model.contains(&k));
                        prop_assert_eq!(ids[&k], fid);
                    }
                    Err(InsertError::TableFull) => {
                        prop_assert!(false, "capacity exceeded with 64-key universe");
                    }
                },
                Op::Delete(k) => {
                    let table_had = table.delete(&k).is_some();
                    let model_had = model.remove(&k);
                    ids.remove(&k);
                    prop_assert_eq!(table_had, model_had);
                }
                Op::Lookup(k) => {
                    prop_assert_eq!(table.lookup(&k).is_some(), model.contains(&k));
                }
            }
            // Global invariants after every step.
            prop_assert_eq!(table.len(), model.len() as u64);
            prop_assert_eq!(table.occupancy().total(), table.len());
        }
        // Every resident key is found exactly where its ID says.
        for (k, loc) in table.iter() {
            let fid = table.peek(&k).unwrap();
            prop_assert_eq!(fid.decode(2), loc);
            prop_assert!(model.contains(&k));
        }
    }

    /// Bucket serialisation round-trips arbitrary slot patterns.
    #[test]
    fn codec_roundtrip(
        present in prop::collection::vec(any::<bool>(), 1..8),
        base in 0u64..1_000_000,
        slot_bytes in 16usize..32,
    ) {
        let slots: Vec<Option<FlowKey>> = present
            .iter()
            .enumerate()
            .map(|(i, p)| p.then(|| FlowKey::from(FiveTuple::from_index(base + i as u64))))
            .collect();
        let total = (slots.len() * slot_bytes).next_multiple_of(32);
        let bytes = codec::serialize_bucket(&slots, slot_bytes, total);
        let back = codec::deserialize_bucket(&bytes, slot_bytes, slots.len());
        prop_assert_eq!(&back, &slots);
        // find_key agrees with the slot array.
        for (i, slot) in slots.iter().enumerate() {
            if let Some(k) = slot {
                prop_assert_eq!(codec::find_key(&bytes, slot_bytes, slots.len(), k), Some(i as u8));
            }
        }
        let absent = FlowKey::from(FiveTuple::from_index(base + 1_000_000));
        prop_assert_eq!(codec::find_key(&bytes, slot_bytes, slots.len(), &absent), None);
    }

    /// Flow-ID packing round-trips every representable location.
    #[test]
    fn flow_id_roundtrip(
        cam_slot in 0u32..(1 << 20),
        bucket in 0u32..(1 << 22),
        slot in 0u8..4,
        path_b in any::<bool>(),
    ) {
        let k = 4u8;
        let cam = Location::Cam(cam_slot);
        prop_assert_eq!(FlowId::encode(cam, k).decode(k), cam);
        let mem = Location::Mem {
            path: if path_b { PathId::B } else { PathId::A },
            bucket,
            slot,
        };
        prop_assert_eq!(FlowId::encode(mem, k).decode(k), mem);
    }

    /// DDR3 controller data integrity: for any interleaving of writes and
    /// reads over a small address space, every read returns the most
    /// recent prior write to that address (per-bank FIFO guarantees
    /// same-address ordering).
    #[test]
    fn controller_read_your_writes(
        ops in prop::collection::vec((0u64..32, any::<bool>(), any::<u8>()), 1..60),
    ) {
        let mut ctrl = MemoryController::new(ControllerConfig {
            timing: TimingPreset::Ddr3_1066E.params(),
            geometry: Geometry::tiny(),
            queue_capacity: 256,
            refresh_enabled: false,
            ..ControllerConfig::default()
        });
        let mut shadow: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut expected: HashMap<u64, Vec<u8>> = HashMap::new(); // read id -> data
        for (id, (addr, is_write, fill)) in ops.into_iter().enumerate() {
            let id = id as u64;
            if is_write {
                let data = vec![fill; 32];
                shadow.insert(addr, data.clone());
                ctrl.enqueue(MemRequest::write(id, addr, data)).unwrap();
            } else {
                expected.insert(
                    id,
                    shadow.get(&addr).cloned().unwrap_or_else(|| vec![0u8; 32]),
                );
                ctrl.enqueue(MemRequest::read(id, addr)).unwrap();
            }
        }
        let done = ctrl.drain(1_000_000);
        for c in done {
            if let Some(want) = expected.get(&c.id) {
                prop_assert_eq!(c.data.as_ref(), Some(want), "read {} at {}", c.id, c.addr);
            }
        }
    }

    /// The DDR3 device's JEDEC checks never reject what the controller
    /// schedules (no panics), and every request completes, for arbitrary
    /// address mixes.
    #[test]
    fn controller_always_drains(addrs in prop::collection::vec(0u64..4096, 1..100)) {
        let mut ctrl = MemoryController::new(ControllerConfig {
            timing: TimingPreset::Ddr3_1600.params(),
            geometry: Geometry::tiny(),
            queue_capacity: 512,
            refresh_enabled: true,
            ..ControllerConfig::default()
        });
        let n = addrs.len();
        for (i, a) in addrs.into_iter().enumerate() {
            ctrl.enqueue(MemRequest::read(i as u64, a % Geometry::tiny().total_bursts()))
                .unwrap();
        }
        let done = ctrl.drain(2_000_000);
        prop_assert_eq!(done.len(), n);
    }
}

mod sim_properties {
    use super::*;
    use flowlut::core::{FlowLutSim, SimConfig};
    use flowlut::traffic::PacketDescriptor;

    fn sim_cfg() -> SimConfig {
        let mut cfg = SimConfig::test_small();
        cfg.table.buckets_per_mem = 2048;
        cfg.table.cam_capacity = 128;
        cfg
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any packet sequence over a small key universe resolves to the
        /// set semantics of the functional table: one entry per distinct
        /// key, every packet attributed, per-flow order preserved.
        #[test]
        fn sim_matches_set_semantics(
            key_ids in prop::collection::vec(0u64..40, 1..120),
        ) {
            let mut sim = FlowLutSim::new(sim_cfg());
            let descs: Vec<PacketDescriptor> = key_ids
                .iter()
                .enumerate()
                .map(|(s, &i)| PacketDescriptor::new(
                    s as u64,
                    FlowKey::from(FiveTuple::from_index(i)),
                ))
                .collect();
            let report = sim.run(&descs);
            prop_assert_eq!(report.completed, descs.len() as u64);
            prop_assert_eq!(report.stats.drops, 0);

            let distinct: HashSet<u64> = key_ids.iter().copied().collect();
            prop_assert_eq!(sim.table().len(), distinct.len() as u64);
            prop_assert_eq!(
                report.stats.inserted_mem + report.stats.inserted_cam,
                distinct.len() as u64
            );
            // Packet conservation in the flow records.
            let packets: u64 = sim.flow_state().iter().map(|(_, r)| r.packets).sum();
            prop_assert_eq!(packets, key_ids.len() as u64);
            // Per-flow completion order == arrival order.
            let mut last_done: HashMap<FlowKey, u64> = HashMap::new();
            for d in sim.descriptors() {
                let done = d.t_done.unwrap();
                if let Some(prev) = last_done.insert(d.desc.key, done) {
                    prop_assert!(prev <= done);
                }
            }
        }

        /// Deleting an arbitrary subset after a run leaves exactly the
        /// complement resident.
        #[test]
        fn sim_deletes_leave_complement(
            keys in prop::collection::hash_set(0u64..60, 1..40),
            delete_mask in prop::collection::vec(any::<bool>(), 60),
        ) {
            let mut sim = FlowLutSim::new(sim_cfg());
            let keys: Vec<u64> = keys.into_iter().collect();
            let descs: Vec<PacketDescriptor> = keys
                .iter()
                .enumerate()
                .map(|(s, &i)| PacketDescriptor::new(
                    s as u64,
                    FlowKey::from(FiveTuple::from_index(i)),
                ))
                .collect();
            sim.run(&descs);
            let mut kept = 0u64;
            for &i in &keys {
                if delete_mask[i as usize] {
                    sim.delete_flow(FlowKey::from(FiveTuple::from_index(i)));
                } else {
                    kept += 1;
                }
            }
            for _ in 0..5_000 {
                sim.tick();
            }
            prop_assert_eq!(sim.table().len(), kept);
            for &i in &keys {
                let resident = sim
                    .table()
                    .peek(&FlowKey::from(FiveTuple::from_index(i)))
                    .is_some();
                prop_assert_eq!(resident, !delete_mask[i as usize]);
            }
        }
    }
}
