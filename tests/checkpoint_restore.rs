//! Warm-restart and online-rescale guarantees of the sharded engine:
//!
//! * a [`ShardedFlowLut::checkpoint`] blob restores to an engine whose
//!   replay is **bit-identical** to the live instance continuing past
//!   the checkpoint — every snapshot field, every report counter;
//! * the blob itself round-trips byte-identically (restore → checkpoint
//!   is a fixed point), so checkpoint chains never drift;
//! * [`ShardedFlowLut::rescale_double`] rehomes every resident flow
//!   onto the doubled shard set with zero descriptor loss — including
//!   descriptors still in flight when the rescale is requested — and
//!   lands each flow on **exactly one** shard, the one the widened
//!   router owns it under.

use std::collections::HashSet;

use flowlut::core::{ExpiryPolicy, FlowLutSim, PressurePolicy, SimConfig};
use flowlut::engine::{EngineConfig, ShardedFlowLut};
use flowlut::traffic::fabric::FabricTraceProfile;
use flowlut::traffic::{FlowKey, PacketDescriptor};
use flowlut::{CheckpointError, FlowPipeline, Session};

/// Two shards, fast test geometry, both lifecycle policies on — the
/// checkpoint must capture aging cursors and victim lists, not just the
/// table.
fn config() -> EngineConfig {
    let mut shard = SimConfig::test_small();
    shard.expiry = Some(ExpiryPolicy {
        idle_timeout_cycles: 30_000,
        scan_stride: 8,
    });
    shard.pressure = Some(PressurePolicy {
        cam_high_water: 12,
        scan_batch: 8,
        victim_cap: 256,
    });
    let mut cfg = EngineConfig::test_small();
    cfg.shard = shard;
    cfg
}

fn trace(packets: usize) -> Vec<PacketDescriptor> {
    FabricTraceProfile::european_2012().generate(packets)
}

/// Resident flow keys, collected shard by shard.
fn resident_keys(engine: &ShardedFlowLut) -> HashSet<FlowKey> {
    let mut keys = HashSet::new();
    for i in 0..engine.shard_count() {
        keys.extend(engine.shard(i).flow_state().iter().map(|(_, r)| r.key));
    }
    keys
}

#[test]
fn restored_engine_replays_bit_identically() {
    let descs = trace(4_000);
    let (prefix, tail) = descs.split_at(2_000);

    // Live instance: stream the prefix, settle, checkpoint.
    let mut live = ShardedFlowLut::new(config());
    Session::new(&mut live).run(prefix).expect("fresh session");
    live.quiesce();
    let blob = live.checkpoint().expect("quiescent engine checkpoints");

    let mut restored = ShardedFlowLut::restore(config(), &blob).expect("own blob restores");
    assert_eq!(
        live.snapshot(),
        restored.snapshot(),
        "restore must reproduce the checkpointed state exactly"
    );

    // Replay the identical tail on both instances: the restored engine
    // must shadow the live one counter for counter, cycle for cycle.
    let report_live = Session::new(&mut live).run(tail).expect("fresh session");
    let report_restored = Session::new(&mut restored)
        .run(tail)
        .expect("fresh session");
    assert_eq!(
        report_live, report_restored,
        "replay reports must be bit-identical"
    );
    assert_eq!(
        live.snapshot(),
        restored.snapshot(),
        "replay snapshots must be bit-identical"
    );
    assert!(
        report_live.completed == tail.len() as u64,
        "the replay must resolve every descriptor"
    );
}

#[test]
fn checkpoint_blob_round_trips_byte_identically() {
    let mut engine = ShardedFlowLut::new(config());
    Session::new(&mut engine)
        .run(&trace(1_500))
        .expect("fresh session");
    engine.quiesce();
    let blob = engine.checkpoint().expect("quiescent engine checkpoints");

    let mut restored = ShardedFlowLut::restore(config(), &blob).expect("own blob restores");
    let again = restored
        .checkpoint()
        .expect("restored engine is quiescent by construction");
    assert_eq!(blob, again, "restore -> checkpoint must be a fixed point");
}

#[test]
fn checkpoint_rejects_a_busy_engine_and_restore_rejects_bad_blobs() {
    let mut engine = ShardedFlowLut::new(config());
    engine.begin_run();
    for d in trace(64) {
        engine.push(d);
    }
    // Descriptors are mid-pipeline: a consistent cut does not exist.
    assert!(matches!(
        engine.checkpoint(),
        Err(CheckpointError::NotQuiescent { .. })
    ));
    engine.quiesce();
    let blob = engine.checkpoint().expect("quiescent engine checkpoints");

    // Truncated blob.
    assert!(ShardedFlowLut::restore(config(), &blob[..blob.len() - 1]).is_err());
    // Garbage magic.
    assert!(matches!(
        ShardedFlowLut::restore(config(), &[0u8; 64]),
        Err(CheckpointError::BadMagic)
    ));
    // Config with the wrong shard count.
    let mut wrong = config();
    wrong.shards = 4;
    assert!(matches!(
        ShardedFlowLut::restore(wrong, &blob),
        Err(CheckpointError::ConfigMismatch { .. })
    ));
}

#[test]
fn rescale_rehomes_every_flow_onto_exactly_one_shard_with_zero_loss() {
    let descs = trace(3_000);
    let (batch, in_flight) = descs.split_at(2_936);

    let mut engine = ShardedFlowLut::new(config());
    Session::new(&mut engine).run(batch).expect("fresh session");

    // Leave real work in flight when the rescale is requested: the
    // drain inside rescale_double must resolve it, not drop it.
    engine.begin_run();
    for &d in in_flight {
        while !engine.push(d) {
            engine.tick();
        }
    }
    assert!(engine.in_pipeline() > 0, "descriptors must be mid-pipeline");

    let drops_before = engine.poll().stats.drops;

    let report = engine.rescale_double().expect("doubled capacity fits");
    assert_eq!(report.old_shards, 2);
    assert_eq!(report.new_shards, 4);
    assert_eq!(engine.shard_count(), 4);

    // Zero descriptor loss: everything offered has resolved, and the
    // rescale introduced no drops.
    let progress = engine.poll();
    assert_eq!(progress.stats.completed, descs.len() as u64);
    assert_eq!(progress.in_pipeline, 0);
    assert_eq!(progress.stats.drops, drops_before);

    // The drain resolves the in-flight tail, which may age or insert
    // flows — membership is judged against the post-drain population.
    let after_keys = resident_keys(&engine);
    assert_eq!(report.migrated_flows, engine.len());
    assert_eq!(after_keys.len() as u64, engine.len());

    // Exactly-one-shard membership, and it is the router's shard.
    for key in &after_keys {
        let owners: Vec<usize> = (0..engine.shard_count())
            .filter(|&i| engine.shard(i).table().peek(key).is_some())
            .collect();
        assert_eq!(
            owners.len(),
            1,
            "flow {key:?} must live on exactly one shard"
        );
        assert_eq!(
            owners[0],
            engine.router().route(key),
            "flow {key:?} must live where the widened router points"
        );
    }

    // The widened engine keeps serving: replaying resident traffic hits
    // without growing occupancy.
    let occupancy = engine.len();
    let report2 = Session::new(&mut engine).run(batch).expect("fresh session");
    assert_eq!(report2.completed, batch.len() as u64);
    assert!(
        engine.len() >= occupancy,
        "replayed flows re-enter or hit; none may be lost"
    );

    // Rescaling again keeps the same guarantees (4 -> 8).
    let report3 = engine.rescale_double().expect("doubled capacity fits");
    assert_eq!(report3.old_shards, 4);
    assert_eq!(report3.new_shards, 8);
    assert_eq!(report3.migrated_flows, engine.len());
    for key in &resident_keys(&engine) {
        let owners = (0..8)
            .filter(|&i| engine.shard(i).table().peek(key).is_some())
            .count();
        assert_eq!(owners, 1, "flow {key:?} must live on exactly one shard");
    }
}

#[test]
fn single_shard_sim_checkpoint_survives_lifecycle_state() {
    // The embedded per-shard blob must carry aging cursors, stats, and
    // the victim list — restore mid-lifecycle, then verify expiry
    // continues identically on both instances.
    let mut cfg = SimConfig::test_small();
    cfg.expiry = Some(ExpiryPolicy {
        idle_timeout_cycles: 10_000,
        scan_stride: 4,
    });
    let mut live = FlowLutSim::new(cfg.clone());
    Session::new(&mut live)
        .run(&trace(400))
        .expect("fresh session");

    let blob = {
        live.quiesce();
        live.checkpoint().expect("quiescent sim checkpoints")
    };
    let mut restored = FlowLutSim::restore(cfg, &blob).expect("own blob restores");

    // Idle both past the TTL: the same flows must expire at the same
    // cycles, leaving identical stats and event streams.
    live.tick_many(60_000);
    restored.tick_many(60_000);
    assert_eq!(live.stats(), restored.stats());
    assert_eq!(
        FlowPipeline::poll_events(&mut live),
        FlowPipeline::poll_events(&mut restored)
    );
    assert_eq!(live.table().len(), restored.table().len());
}
