//! Determinism of threaded shard execution.
//!
//! `ExecutionMode::Threaded(n)` only changes which host thread runs each
//! shard's per-cycle body; shards share no state, so every observable —
//! the unified [`RunReport`], the rich per-shard `EngineReport`, and the
//! complete post-run [`EngineSnapshot`] — must be **bit-identical** to
//! inline execution. These tests (including a property test over shard
//! counts, thread counts and trace lengths on the seeded fabric trace)
//! are the acceptance bar for the threaded engine: any scheduling-order
//! dependence, shared-state leak, or barrier bug shows up as a diverging
//! report.

use proptest::prelude::*;

use flowlut::engine::{EngineConfig, ExecutionMode, ShardedFlowLut};
use flowlut::traffic::fabric::FabricTraceProfile;
use flowlut::traffic::PacketDescriptor;
use flowlut::{Builder, RunReport, Session};

fn trace(packets: usize) -> Vec<PacketDescriptor> {
    FabricTraceProfile::european_2012().generate(packets)
}

fn engine(shards: usize, execution: ExecutionMode) -> ShardedFlowLut {
    ShardedFlowLut::new(EngineConfig {
        shards,
        input_rate_mhz: shards as f64 * 100.0,
        execution,
        ..EngineConfig::test_small()
    })
}

/// Runs the same descriptors through an inline and a threaded engine
/// and asserts every observable is bit-identical.
fn assert_bit_identical(shards: usize, threads: usize, descs: &[PacketDescriptor]) {
    let mut inline_engine = engine(shards, ExecutionMode::Inline);
    let mut threaded_engine = engine(shards, ExecutionMode::Threaded(threads));
    let a = inline_engine.run(descs);
    let b = threaded_engine.run(descs);
    // The rich report, including every per-shard counter. EngineReport
    // carries f64 rates; Debug prints full precision, so equal strings
    // mean equal bits for the integer state and equal values for the
    // derived floats.
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "EngineReport diverged at {shards} shards / {threads} threads"
    );
    let ua: RunReport = a.into();
    let ub: RunReport = b.into();
    assert_eq!(ua, ub, "RunReport diverged");
    assert_eq!(
        inline_engine.snapshot(),
        threaded_engine.snapshot(),
        "post-run engine state diverged"
    );
}

#[test]
fn threaded_is_bit_identical_on_the_fabric_trace() {
    let descs = trace(2_000);
    assert_bit_identical(4, 2, &descs);
    assert_bit_identical(4, 4, &descs);
}

#[test]
fn threaded_is_bit_identical_with_more_threads_than_shards() {
    // Threaded(8) on 2 shards clamps to 2 executors and must still match.
    let descs = trace(1_000);
    assert_bit_identical(2, 8, &descs);
}

#[test]
fn threaded_is_bit_identical_across_repeated_runs() {
    let first = trace(800);
    let second: Vec<PacketDescriptor> = trace(1_600).split_off(800);
    let mut inline_engine = engine(3, ExecutionMode::Inline);
    let mut threaded_engine = engine(3, ExecutionMode::Threaded(3));
    let a1 = inline_engine.run(&first);
    let b1 = threaded_engine.run(&first);
    assert_eq!(format!("{a1:?}"), format!("{b1:?}"));
    let a2 = inline_engine.run(&second);
    let b2 = threaded_engine.run(&second);
    assert_eq!(format!("{a2:?}"), format!("{b2:?}"));
    assert_eq!(inline_engine.snapshot(), threaded_engine.snapshot());
}

#[test]
fn threaded_is_bit_identical_with_preload_and_sessions() {
    // The builder path end to end: preload on both engines, then the
    // generic streaming session over `dyn FlowBackend`.
    let descs = trace(1_200);
    let keys: Vec<_> = descs.iter().take(300).map(|d| d.key).collect();
    let mk = |threads: usize| {
        let mut backend = Builder::new()
            .sim_config(flowlut::core::SimConfig::test_small())
            .shards(4)
            .threads(threads)
            .build()
            .expect("valid engine");
        let mut loaded = 0;
        for &k in &keys {
            if backend.insert(k).expect("capacity suffices") {
                loaded += 1;
            }
        }
        assert!(loaded > 0);
        backend
    };
    let mut inline_backend = mk(1);
    let mut threaded_backend = mk(4);
    let ra = Session::new(inline_backend.as_pipeline().expect("timed"))
        .run(&descs)
        .expect("fresh session");
    let rb = Session::new(threaded_backend.as_pipeline().expect("timed"))
        .run(&descs)
        .expect("fresh session");
    assert_eq!(ra, rb, "session reports diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The acceptance property: on the seeded fabric trace, any
    /// (shards, threads, length) combination reports bit-identically
    /// under threaded and inline execution.
    #[test]
    fn threaded_equals_inline(
        shards in 1usize..=4,
        threads in 2usize..=4,
        packets in 100usize..600,
    ) {
        assert_bit_identical(shards, threads, &trace(packets));
    }
}
