//! The legacy batch entry points (`FlowLutSim::run`,
//! `ShardedFlowLut::run`) are thin wrappers over the streaming session
//! API. These tests pin the behavioural equivalence: on a fixed seeded
//! fabric trace, the wrapper and a hand-driven session produce
//! *identical* [`RunReport`]s — same cycle counts, same counters, same
//! occupancy — for both the single-channel simulator and the sharded
//! engine.

use flowlut::core::{FlowLutSim, SimConfig};
use flowlut::engine::{EngineConfig, ShardedFlowLut};
use flowlut::traffic::fabric::FabricTraceProfile;
use flowlut::traffic::PacketDescriptor;
use flowlut::{run_session, RunReport};

fn trace(packets: usize) -> Vec<PacketDescriptor> {
    FabricTraceProfile::european_2012().generate(packets)
}

#[test]
fn sim_legacy_run_equals_streaming_session() {
    let descs = trace(2_000);
    let mut legacy = FlowLutSim::new(SimConfig::test_small());
    let mut session = FlowLutSim::new(SimConfig::test_small());

    let legacy_report: RunReport = legacy.run(&descs).into();
    let session_report = run_session(&mut session, &descs);

    assert_eq!(legacy_report, session_report);
    assert_eq!(legacy_report.channels, 1);
    assert_eq!(legacy_report.completed, 2_000);
    assert!(legacy_report.sys_cycles > 0);
}

#[test]
fn engine_legacy_run_equals_streaming_session() {
    let descs = trace(2_000);
    let mut legacy = ShardedFlowLut::new(EngineConfig::test_small());
    let mut session = ShardedFlowLut::new(EngineConfig::test_small());

    let legacy_report: RunReport = legacy.run(&descs).into();
    let session_report = run_session(&mut session, &descs);

    assert_eq!(legacy_report, session_report);
    assert_eq!(legacy_report.channels, 2);
    assert_eq!(legacy_report.completed, 2_000);
}

#[test]
fn equivalence_holds_across_repeated_runs() {
    // The wrapper differences statistics against the run start; a second
    // session on a warm instance must report the second run alone, just
    // as the legacy wrapper does.
    let first = trace(1_000);
    let second: Vec<PacketDescriptor> = trace(2_000).split_off(1_000);

    let mut legacy = FlowLutSim::new(SimConfig::test_small());
    let mut session = FlowLutSim::new(SimConfig::test_small());
    legacy.run(&first);
    run_session(&mut session, &first);

    let legacy_report: RunReport = legacy.run(&second).into();
    let session_report = run_session(&mut session, &second);
    assert_eq!(legacy_report, session_report);
    assert_eq!(legacy_report.completed, 1_000);
}

#[test]
fn session_report_matches_engine_report_projection() {
    // The unified report is a faithful projection of the rich engine
    // report: aggregate counters, cycles and occupancy all agree.
    let descs = trace(1_500);
    let mut engine = ShardedFlowLut::new(EngineConfig::test_small());
    let rich = engine.run(&descs);
    let unified: RunReport = rich.clone().into();

    assert_eq!(unified.stats, rich.aggregate);
    assert_eq!(unified.sys_cycles, rich.sys_cycles);
    assert_eq!(unified.occupancy, rich.occupancy());
    assert_eq!(unified.mdesc_per_s, rich.mdesc_per_s);
}
