//! The legacy batch entry points (`FlowLutSim::run`,
//! `ShardedFlowLut::run`) are thin wrappers over the typed streaming
//! [`Session`]. These tests pin the behavioural equivalence: on a fixed
//! seeded fabric trace, the wrapper, a hand-driven session, and the
//! deprecated `run_session` shim all produce *identical* [`RunReport`]s
//! — same cycle counts, same counters, same occupancy — for both the
//! single-channel simulator and the sharded engine.

use flowlut::core::{FlowLutSim, SimConfig};
use flowlut::engine::{EngineConfig, ShardedFlowLut};
use flowlut::traffic::fabric::FabricTraceProfile;
use flowlut::traffic::PacketDescriptor;
use flowlut::{FlowPipeline, RunReport, Session, SessionError};

fn trace(packets: usize) -> Vec<PacketDescriptor> {
    FabricTraceProfile::european_2012().generate(packets)
}

#[test]
fn sim_legacy_run_equals_streaming_session() {
    let descs = trace(2_000);
    let mut legacy = FlowLutSim::new(SimConfig::test_small());
    let mut session = FlowLutSim::new(SimConfig::test_small());

    let legacy_report: RunReport = legacy.run(&descs).into();
    // Hand-driven: offer the batch, then finish (which drains).
    let mut s = session.start_run();
    s.offer(&descs).expect("fresh session");
    let session_report = s.finish();

    assert_eq!(legacy_report, session_report);
    assert_eq!(legacy_report.channels, 1);
    assert_eq!(legacy_report.completed, 2_000);
    assert!(legacy_report.sys_cycles > 0);
}

#[test]
fn engine_legacy_run_equals_streaming_session() {
    let descs = trace(2_000);
    let mut legacy = ShardedFlowLut::new(EngineConfig::test_small());
    let mut session = ShardedFlowLut::new(EngineConfig::test_small());

    let legacy_report: RunReport = legacy.run(&descs).into();
    let session_report = session.start_run().run(&descs).expect("fresh session");

    assert_eq!(legacy_report, session_report);
    assert_eq!(legacy_report.channels, 2);
    assert_eq!(legacy_report.completed, 2_000);
}

#[test]
fn deprecated_run_session_shim_matches_typed_session() {
    // The 0.2 migration shim must stay byte-for-byte equivalent to the
    // session it wraps until it is removed.
    let descs = trace(1_500);
    let mut via_shim = FlowLutSim::new(SimConfig::test_small());
    let mut via_session = FlowLutSim::new(SimConfig::test_small());
    #[allow(deprecated)]
    let shim_report = flowlut::run_session(&mut via_shim, &descs);
    let session_report = via_session.start_run().run(&descs).expect("fresh session");
    assert_eq!(shim_report, session_report);
}

#[test]
fn equivalence_holds_across_repeated_runs() {
    // The session differences statistics against the run start; a second
    // session on a warm instance must report the second run alone, just
    // as the legacy wrapper does.
    let first = trace(1_000);
    let second: Vec<PacketDescriptor> = trace(2_000).split_off(1_000);

    let mut legacy = FlowLutSim::new(SimConfig::test_small());
    let mut session = FlowLutSim::new(SimConfig::test_small());
    legacy.run(&first);
    session.start_run().run(&first).expect("fresh session");

    let legacy_report: RunReport = legacy.run(&second).into();
    let session_report = session.start_run().run(&second).expect("fresh session");
    assert_eq!(legacy_report, session_report);
    assert_eq!(legacy_report.completed, 1_000);
}

#[test]
fn session_report_matches_engine_report_projection() {
    // The unified report is a faithful projection of the rich engine
    // report: aggregate counters, cycles and occupancy all agree.
    let descs = trace(1_500);
    let mut engine = ShardedFlowLut::new(EngineConfig::test_small());
    let rich = engine.run(&descs);
    let unified: RunReport = rich.clone().into();

    assert_eq!(unified.stats, rich.aggregate);
    assert_eq!(unified.sys_cycles, rich.sys_cycles);
    assert_eq!(unified.occupancy, rich.occupancy());
    assert_eq!(unified.mdesc_per_s, rich.mdesc_per_s);
}

#[test]
fn drained_session_rejects_further_use() {
    // Lifecycle misuse is a typed error, not a panic or silent no-op.
    let descs = trace(200);
    let mut sim = FlowLutSim::new(SimConfig::test_small());
    let mut s = Session::new(&mut sim);
    s.offer(&descs).expect("fresh session");
    s.drain().expect("first drain");
    assert_eq!(s.drain(), Err(SessionError::AlreadyDrained));
    assert_eq!(s.push(descs[0]), Err(SessionError::Drained));
    assert_eq!(s.offer(&descs), Err(SessionError::Drained));
    // finish() still produces the report for the completed work.
    let report = s.finish();
    assert_eq!(report.completed, 200);
}
