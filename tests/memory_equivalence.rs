//! Refactor-equivalence pins for the `MemoryModel` trait extraction.
//!
//! The pluggable-memory refactor (PR 7) rebuilt `FlowLutSim` on
//! `Box<dyn MemoryModel>` instead of the concrete `MemoryController`.
//! The golden values below were captured by running the *pre-refactor*
//! tree (commit 15cb8af) on fixed seeded fabric traces; these tests
//! prove the default DDR3 paths — the 1066E preset, the DDR3-1600
//! default, and the sharded engine — produce bit-identical
//! [`RunReport`]s after the extraction, the same bar
//! `tests/session_equivalence.rs` sets for the session API.

use flowlut::core::{FlowLutSim, SimConfig, SimStats};
use flowlut::ddr3::{MemoryKind, MemorySpec, TimingPreset};
use flowlut::engine::{EngineConfig, ShardedFlowLut};
use flowlut::traffic::fabric::FabricTraceProfile;
use flowlut::traffic::PacketDescriptor;
use flowlut::{Builder, FlowPipeline, RunReport};

fn trace(packets: usize) -> Vec<PacketDescriptor> {
    FabricTraceProfile::european_2012().generate(packets)
}

/// The pre-refactor report of `SimConfig::test_small()` with the
/// DDR3-1066E preset on a 2 000-packet european_2012 trace.
fn golden_1066e() -> RunReport {
    RunReport {
        backend: "hashcam-sim",
        channels: 1,
        sys_cycles: 6400,
        elapsed_ns: 47999.99999999999,
        completed: 2000,
        mdesc_per_s: 41.66666666666667,
        mean_latency_ns: 3414.6449999999995,
        stats: SimStats {
            offered: 2000,
            admitted: 2000,
            completed: 2000,
            cam_hits: 3,
            lu1_hits: 17,
            lu2_hits: 938,
            inserted_mem: 866,
            inserted_cam: 16,
            duplicate_races: 0,
            drops: 160,
            lu1_per_path: [968, 1029],
            reads_issued: 3977,
            writes_issued: 862,
            filter_hold_cycles: 1425,
            input_stall_cycles: 2381,
            same_key_holds: 785,
            bwr_count_releases: 68,
            bwr_timeout_releases: 62,
            deletes: 0,
            housekeeping_expired: 0,
            evictions: 0,
            expired_ttl: 0,
            pressure_evicted: 0,
            total_latency_sys: 910572,
            max_latency_sys: 1466,
        },
        occupancy: flowlut::core::Occupancy {
            mem_a: 418,
            mem_b: 448,
            cam: 16,
        },
    }
}

/// The pre-refactor report of plain `SimConfig::test_small()`
/// (DDR3-1600 default) on the same trace.
fn golden_default() -> RunReport {
    RunReport {
        backend: "hashcam-sim",
        channels: 1,
        sys_cycles: 7548,
        elapsed_ns: 37740.0,
        completed: 2000,
        mdesc_per_s: 52.99417064122946,
        mean_latency_ns: 2187.37,
        stats: SimStats {
            offered: 2000,
            admitted: 2000,
            completed: 2000,
            cam_hits: 3,
            lu1_hits: 18,
            lu2_hits: 937,
            inserted_mem: 865,
            inserted_cam: 16,
            duplicate_races: 0,
            drops: 161,
            lu1_per_path: [968, 1029],
            reads_issued: 3976,
            writes_issued: 854,
            filter_hold_cycles: 3426,
            input_stall_cycles: 0,
            same_key_holds: 753,
            bwr_count_releases: 56,
            bwr_timeout_releases: 80,
            deletes: 0,
            housekeeping_expired: 0,
            evictions: 0,
            expired_ttl: 0,
            pressure_evicted: 0,
            total_latency_sys: 874948,
            max_latency_sys: 1634,
        },
        occupancy: flowlut::core::Occupancy {
            mem_a: 418,
            mem_b: 447,
            cam: 16,
        },
    }
}

/// The pre-refactor report of `ShardedFlowLut::new(EngineConfig::
/// test_small())` (2 channels) on the same trace.
fn golden_engine() -> RunReport {
    RunReport {
        backend: "hashcam-sharded",
        channels: 2,
        sys_cycles: 5379,
        elapsed_ns: 26895.0,
        completed: 2000,
        mdesc_per_s: 74.36326454731363,
        mean_latency_ns: 1209.205,
        stats: SimStats {
            offered: 2000,
            admitted: 2000,
            completed: 2000,
            cam_hits: 0,
            lu1_hits: 9,
            lu2_hits: 955,
            inserted_mem: 1013,
            inserted_cam: 23,
            duplicate_races: 0,
            drops: 0,
            lu1_per_path: [970, 1030],
            reads_issued: 3991,
            writes_issued: 1004,
            filter_hold_cycles: 9871,
            input_stall_cycles: 0,
            same_key_holds: 773,
            bwr_count_releases: 75,
            bwr_timeout_releases: 75,
            deletes: 0,
            housekeeping_expired: 0,
            evictions: 0,
            expired_ttl: 0,
            pressure_evicted: 0,
            total_latency_sys: 483682,
            max_latency_sys: 943,
        },
        occupancy: flowlut::core::Occupancy {
            mem_a: 471,
            mem_b: 542,
            cam: 23,
        },
    }
}

#[test]
fn ddr3_1066e_path_bit_identical_to_pre_refactor() {
    let mut cfg = SimConfig::test_small();
    cfg.timing = TimingPreset::Ddr3_1066E.params();
    let mut sim = FlowLutSim::new(cfg);
    let report = sim.start_run().run(&trace(2_000)).unwrap();
    assert_eq!(report, golden_1066e());
}

#[test]
fn ddr3_default_path_bit_identical_to_pre_refactor() {
    let mut sim = FlowLutSim::new(SimConfig::test_small());
    let report = sim.start_run().run(&trace(2_000)).unwrap();
    assert_eq!(report, golden_default());
}

#[test]
fn engine_path_bit_identical_to_pre_refactor() {
    let mut engine = ShardedFlowLut::new(EngineConfig::test_small());
    let report = engine.start_run().run(&trace(2_000)).unwrap();
    assert_eq!(report, golden_engine());
}

#[test]
fn explicit_ddr3_spec_is_the_legacy_path() {
    // Selecting MemorySpec::Ddr3 explicitly must be the exact legacy
    // behaviour — same report, cycle for cycle.
    let descs = trace(2_000);
    let mut implicit = FlowLutSim::new(SimConfig::test_small());
    let mut explicit = {
        let mut cfg = SimConfig::test_small();
        cfg.memory = MemorySpec::Ddr3;
        FlowLutSim::new(cfg)
    };
    assert_eq!(
        implicit.start_run().run(&descs).unwrap(),
        explicit.start_run().run(&descs).unwrap()
    );
}

#[test]
fn builder_timing_and_memory_ddr3_agree() {
    // The facade's two DDR3 entry points — the TimingPreset path and
    // the MemoryKind path — must build identical simulators.
    let descs = trace(1_000);
    let mut via_timing = Builder::new()
        .timing(TimingPreset::Ddr3_1600)
        .sim_config(SimConfig::test_small())
        .build_sim()
        .unwrap();
    let mut via_memory = Builder::new()
        .memory(MemoryKind::Ddr3)
        .sim_config(SimConfig::test_small())
        .build_sim()
        .unwrap();
    assert_eq!(
        via_timing.start_run().run(&descs).unwrap(),
        via_memory.start_run().run(&descs).unwrap()
    );
}

#[test]
fn non_ddr3_models_run_the_same_workload() {
    // Every alternative technology completes the identical trace with
    // near-identical functional outcome. (Exact occupancy can differ by
    // a flow or two: which insert a full bucket drops depends on
    // completion order, which is timing-dependent.)
    let descs = trace(1_000);
    let mut baseline: Option<u64> = None;
    for kind in MemoryKind::ALL {
        let mut cfg = SimConfig::test_small();
        cfg.memory = kind.default_spec();
        let mut sim = FlowLutSim::new(cfg);
        let report = sim.start_run().run(&descs).unwrap();
        assert_eq!(report.completed, 1_000, "{}", kind.name());
        let total = report.occupancy.total();
        match baseline {
            None => baseline = Some(total),
            Some(b) => assert!(
                total.abs_diff(b) <= 5,
                "{}: occupancy {total} far from ddr3's {b}",
                kind.name()
            ),
        }
    }
}

#[test]
fn sram_is_at_least_as_fast_as_ddr3() {
    // The idealized bound must not lose to the technology it bounds.
    let descs = trace(2_000);
    let mut ddr3 = FlowLutSim::new(SimConfig::test_small());
    let ddr3_cycles = ddr3.start_run().run(&descs).unwrap().sys_cycles;
    let mut cfg = SimConfig::test_small();
    cfg.memory = MemoryKind::Sram.default_spec();
    let mut sram = FlowLutSim::new(cfg);
    let sram_cycles = sram.start_run().run(&descs).unwrap().sys_cycles;
    assert!(
        sram_cycles <= ddr3_cycles,
        "sram took {sram_cycles} cycles vs ddr3 {ddr3_cycles}"
    );
}
