//! Cross-backend conformance: every [`FlowBackend`] in the workspace —
//! six related-work baselines, the paper's functional table, the timed
//! single-channel simulator, and the sharded engine — answers one
//! generated insert/lookup/remove sequence *identically* (exact
//! membership, upsert semantics), while its [`OpStats`] stay monotone
//! and merge-consistent (per-op deltas merged in sequence equal the
//! final counters).
//!
//! The key universe is small (24 keys) and every structure is sized
//! far below its failure point, so a divergence is a semantics bug, not
//! a capacity artefact.

use proptest::prelude::*;
use std::collections::HashSet;

use flowlut::core::{SimConfig, TableConfig};
use flowlut::traffic::{FiveTuple, FlowKey};
use flowlut::{BaselineKind, Builder, ExpiryPolicy, FlowBackend, FlowEventKind, OpStats};

fn key(i: u64) -> FlowKey {
    FlowKey::from(FiveTuple::from_index(i))
}

fn key_strategy() -> impl Strategy<Value = FlowKey> {
    // Small universe so sequences revisit keys (duplicate inserts,
    // removes of absent keys, re-inserts after removal).
    (0u64..24).prop_map(key)
}

#[derive(Debug, Clone)]
enum Op {
    Insert(FlowKey),
    Lookup(FlowKey),
    Remove(FlowKey),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        key_strategy().prop_map(Op::Insert),
        key_strategy().prop_map(Op::Lookup),
        key_strategy().prop_map(Op::Remove),
    ]
}

/// Every backend in the workspace, sized generously for a 24-key
/// universe (the timed backends use the fast test configuration).
fn registry() -> Vec<Box<dyn FlowBackend>> {
    let table = TableConfig {
        buckets_per_mem: 64,
        entries_per_bucket: 4,
        cam_capacity: 64,
        entry_slot_bytes: 16,
        hash_seed: 99,
    };
    let sim = SimConfig {
        table,
        ..SimConfig::test_small()
    };
    let mut backends: Vec<Box<dyn FlowBackend>> = BaselineKind::ALL
        .iter()
        .map(|&kind| {
            Builder::new()
                .table(table)
                .baseline(kind)
                .build()
                .expect("valid baseline config")
        })
        .collect();
    backends.push(Builder::new().table(table).build().expect("valid table"));
    backends.push(
        Builder::new()
            .sim_config(sim.clone())
            .shards(1)
            .build()
            .expect("valid sim"),
    );
    backends.push(
        Builder::new()
            .sim_config(sim)
            .shards(2)
            .build()
            .expect("valid engine"),
    );
    backends
}

/// Idle timeout for the expiry conformance arm: far above the cycle
/// cost of the synchronous [`FlowStore`] inserts that seed the table
/// (so nothing expires *during* seeding), far below the idle stretch.
const EXPIRY_TIMEOUT_SYS: u64 = 50_000;

/// The full registry again, but with the engine-level idle-TTL
/// [`ExpiryPolicy`] configured on the timed backends. The functional
/// structures take the identical builder calls and simply have no clock
/// to age against — the test gates on [`FlowBackend::as_pipeline`].
fn expiry_registry() -> Vec<Box<dyn FlowBackend>> {
    let table = TableConfig {
        buckets_per_mem: 64,
        entries_per_bucket: 4,
        cam_capacity: 64,
        entry_slot_bytes: 16,
        hash_seed: 99,
    };
    let sim = SimConfig {
        table,
        expiry: Some(ExpiryPolicy {
            idle_timeout_cycles: EXPIRY_TIMEOUT_SYS,
            scan_stride: 4,
        }),
        ..SimConfig::test_small()
    };
    let mut backends: Vec<Box<dyn FlowBackend>> = BaselineKind::ALL
        .iter()
        .map(|&kind| {
            Builder::new()
                .table(table)
                .baseline(kind)
                .build()
                .expect("valid baseline config")
        })
        .collect();
    backends.push(Builder::new().table(table).build().expect("valid table"));
    backends.push(
        Builder::new()
            .sim_config(sim.clone())
            .shards(1)
            .build()
            .expect("valid sim"),
    );
    backends.push(
        Builder::new()
            .sim_config(sim)
            .shards(2)
            .build()
            .expect("valid engine"),
    );
    backends
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_backends_agree_and_account_monotonically(
        ops in prop::collection::vec(op_strategy(), 1..80)
    ) {
        let mut backends = registry();
        let mut model: HashSet<FlowKey> = HashSet::new();
        // Per-backend: stats after the previous op, and the running merge
        // of per-op deltas.
        let mut prev: Vec<OpStats> = backends.iter().map(|b| b.op_stats()).collect();
        let initial = prev.clone();
        let mut merged: Vec<OpStats> = vec![OpStats::default(); backends.len()];

        for op in &ops {
            // Reference-model answer for this op.
            let expected = match *op {
                Op::Insert(k) => model.insert(k),
                Op::Lookup(k) => model.contains(&k),
                Op::Remove(k) => model.remove(&k),
            };
            for (i, b) in backends.iter_mut().enumerate() {
                let got = match *op {
                    Op::Insert(k) => b.insert(k).unwrap_or_else(|e| {
                        panic!("{} unexpectedly full: {e}", b.name())
                    }),
                    Op::Lookup(k) => b.contains(&k),
                    Op::Remove(k) => b.remove(&k),
                };
                prop_assert_eq!(
                    got, expected,
                    "{} diverged on {:?}", b.name(), op
                );
                prop_assert_eq!(
                    b.len(), model.len() as u64,
                    "{} occupancy diverged", b.name()
                );
                // Monotone accounting: no counter ever decreases.
                let now = b.op_stats();
                prop_assert!(
                    now.dominates(&prev[i]),
                    "{} op_stats went backwards: {:?} -> {:?}",
                    b.name(), prev[i], now
                );
                merged[i].merge(&now.delta_since(&prev[i]));
                prev[i] = now;
            }
        }

        // Merge-consistency: the per-op deltas folded in sequence equal
        // the lifetime counters.
        for (i, b) in backends.iter().enumerate() {
            let mut reconstructed = initial[i];
            reconstructed.merge(&merged[i]);
            prop_assert_eq!(
                reconstructed, b.op_stats(),
                "{} merged deltas disagree with final counters", b.name()
            );
        }

        // Final membership sweep over the whole universe.
        for i in 0..24 {
            let k = key(i);
            let expected = model.contains(&k);
            for b in backends.iter_mut() {
                prop_assert_eq!(b.contains(&k), expected, "{} final sweep", b.name());
            }
        }
    }

    /// Expiry conformance, capability-gated: every backend takes the
    /// same flow population, then the timed backends (the ones whose
    /// [`FlowBackend::as_pipeline`] answers `Some`) idle past the
    /// configured TTL and must agree exactly — every seeded flow
    /// expires, is counted once in `expired_ttl`, raises exactly one
    /// `ExpiredTtl` event carrying its key, and leaves the table.
    /// Functional backends have no clock and are skipped by the gate.
    #[test]
    fn timed_backends_expire_idle_flows_identically(
        keys in prop::collection::hash_set(0u64..24, 1..24usize)
    ) {
        let mut backends = expiry_registry();
        let expected_keys: HashSet<FlowKey> = keys.iter().map(|&i| key(i)).collect();
        let population = expected_keys.len() as u64;

        for b in backends.iter_mut() {
            // Deterministic seeding order across backends.
            let mut sorted: Vec<u64> = keys.iter().copied().collect();
            sorted.sort_unstable();
            for i in sorted {
                let fresh = b
                    .insert(key(i))
                    .unwrap_or_else(|e| panic!("{} unexpectedly full: {e}", b.name()));
                prop_assert!(fresh, "{} saw a duplicate on first insert", b.name());
            }
            prop_assert_eq!(b.len(), population, "{} seeded occupancy", b.name());

            let name = b.name();
            let Some(pipe) = b.as_pipeline() else {
                continue; // functional structure: no clock, nothing ages
            };
            // Idle long enough for every flow to cross the TTL and for
            // the amortized scan (stride records/cycle) to sweep them.
            pipe.tick_many(5 * EXPIRY_TIMEOUT_SYS);

            let progress = pipe.poll();
            prop_assert_eq!(
                progress.stats.expired_ttl, population,
                "{} expired_ttl counter", name
            );
            prop_assert_eq!(
                progress.stats.pressure_evicted, 0,
                "{} must not confuse expiry with eviction", name
            );
            let events = pipe.poll_events();
            prop_assert_eq!(events.len() as u64, population, "{} one event per flow", name);
            let mut seen: HashSet<FlowKey> = HashSet::new();
            for e in &events {
                prop_assert_eq!(e.kind, FlowEventKind::ExpiredTtl, "{} event kind", name);
                prop_assert!(seen.insert(e.key), "{} duplicate event for {:?}", name, e.key);
            }
            prop_assert_eq!(&seen, &expected_keys, "{} event keys", name);
            prop_assert_eq!(
                pipe.poll_events().len(), 0,
                "{} events must drain exactly once", name
            );

            prop_assert_eq!(b.len(), 0, "{} expired flows must leave the table", name);
            for k in &expected_keys {
                prop_assert!(!b.contains(k), "{} still answers for an expired flow", name);
            }
        }
    }
}
