//! Cross-crate integration: traffic → core → ddr3, checked for
//! semantic consistency end to end.

use std::collections::HashMap;

use flowlut::core::{FlowLutSim, LoadBalancerPolicy, SimConfig};
use flowlut::traffic::fabric::FabricTraceProfile;
use flowlut::traffic::workloads::MatchRateWorkload;
use flowlut::traffic::{FiveTuple, FlowKey, PacketDescriptor};

fn small_cfg() -> SimConfig {
    let mut cfg = SimConfig::test_small();
    cfg.table.buckets_per_mem = 8192;
    cfg.table.cam_capacity = 256;
    cfg.geometry.rows = 512;
    cfg
}

/// A realistic trace runs to completion with every invariant holding:
/// flow-ID validity, record/table agreement, and per-flow completion
/// ordering.
#[test]
fn fabric_trace_consistency() {
    let mut sim = FlowLutSim::new(small_cfg());
    let trace = FabricTraceProfile::european_2012().generate(10_000);
    let report = sim.run(&trace);
    assert_eq!(report.completed, 10_000);
    assert_eq!(report.stats.drops, 0, "table sized for the trace");

    // 1. Every descriptor resolved with a flow ID the table can confirm.
    let mut per_flow_last_done: HashMap<FlowKey, u64> = HashMap::new();
    for d in sim.descriptors() {
        let fid = d.fid.expect("no drops");
        assert_eq!(
            sim.table().peek(&d.desc.key),
            Some(fid),
            "table and completion disagree for {:?}",
            d.desc.key
        );
        // 2. Per-flow completion order equals arrival order.
        let done = d.t_done.expect("completed");
        if let Some(prev) = per_flow_last_done.insert(d.desc.key, done) {
            assert!(prev <= done, "per-flow order violated");
        }
    }

    // 3. Flow records agree with the table and with packet conservation.
    assert_eq!(sim.flow_state().len() as u64, sim.table().len());
    let packet_sum: u64 = sim.flow_state().iter().map(|(_, r)| r.packets).sum();
    assert_eq!(packet_sum, 10_000, "every packet accounted to one flow");

    // 4. The new-flow count matches the trace's distinct keys.
    let distinct: std::collections::HashSet<FlowKey> = trace.iter().map(|d| d.key).collect();
    assert_eq!(
        report.stats.inserted_mem + report.stats.inserted_cam,
        distinct.len() as u64
    );
}

/// The realised miss rate tracks the workload's configured match rate.
#[test]
fn realised_miss_rate_matches_workload() {
    for match_rate in [0.0, 0.5, 1.0] {
        let mut sim = FlowLutSim::new(small_cfg());
        let set = MatchRateWorkload {
            table_size: 1_000,
            queries: 2_000,
            match_rate,
            seed: 11,
        }
        .build();
        sim.preload(set.preload.iter().copied()).unwrap();
        let report = sim.run(&set.queries);
        // Matching queries repeat keys, so duplicates of a *fresh* key
        // can also match; compare against the workload's realised rate.
        let measured_miss = report.stats.miss_rate();
        let expected_miss = 1.0 - match_rate;
        assert!(
            (measured_miss - expected_miss).abs() < 0.06,
            "match_rate {match_rate}: measured miss {measured_miss}"
        );
    }
}

/// Deterministic reproduction: identical configuration and workload give
/// identical reports.
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut sim = FlowLutSim::new(small_cfg());
        let trace = FabricTraceProfile::european_2012().generate(3_000);
        let r = sim.run(&trace);
        (r.sys_cycles, r.stats, sim.table().len())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

/// Load-balancer policies all process the same trace correctly (same
/// resolutions, different timing).
#[test]
fn load_balancers_agree_on_semantics() {
    let trace = FabricTraceProfile::european_2012().generate(2_000);
    let mut results = Vec::new();
    for policy in [
        LoadBalancerPolicy::HashSplit,
        LoadBalancerPolicy::FixedRatio {
            path_a_permille: 300,
        },
        LoadBalancerPolicy::QueueDepth,
    ] {
        let mut cfg = small_cfg();
        cfg.load_balancer = policy;
        let mut sim = FlowLutSim::new(cfg);
        let report = sim.run(&trace);
        // Semantics: identical new-flow count and zero drops regardless
        // of which path looked first.
        results.push((
            report.stats.inserted_mem + report.stats.inserted_cam,
            report.stats.drops,
        ));
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
}

/// Packets for the same flow arriving back-to-back (the waiting-list
/// path) never produce duplicate table entries.
#[test]
fn burst_of_same_flow_is_single_entry() {
    let mut sim = FlowLutSim::new(small_cfg());
    let key = FlowKey::from(FiveTuple::from_index(42));
    let burst: Vec<PacketDescriptor> = (0..200).map(|s| PacketDescriptor::new(s, key)).collect();
    let report = sim.run(&burst);
    assert_eq!(report.completed, 200);
    assert_eq!(sim.table().len(), 1);
    assert_eq!(sim.flow_state().len(), 1);
    let (_, record) = sim.flow_state().iter().next().unwrap();
    assert_eq!(record.packets, 200);
}

/// Interleaved deletes and traffic stay consistent.
#[test]
fn deletes_interleaved_with_traffic() {
    let mut sim = FlowLutSim::new(small_cfg());
    let keys: Vec<FlowKey> = (0..100)
        .map(|i| FlowKey::from(FiveTuple::from_index(i)))
        .collect();
    let descs: Vec<PacketDescriptor> = keys
        .iter()
        .enumerate()
        .map(|(s, k)| PacketDescriptor::new(s as u64, *k))
        .collect();
    sim.run(&descs);
    assert_eq!(sim.table().len(), 100);

    // Delete the even keys while re-offering the odd ones.
    for k in keys.iter().step_by(2) {
        sim.delete_flow(*k);
    }
    let odd: Vec<PacketDescriptor> = keys
        .iter()
        .skip(1)
        .step_by(2)
        .enumerate()
        .map(|(s, k)| PacketDescriptor::new(s as u64, *k))
        .collect();
    let report = sim.run(&odd);
    // Drain any remaining deletes.
    for _ in 0..2_000 {
        sim.tick();
    }
    assert_eq!(sim.table().len(), 50);
    assert_eq!(
        report.stats.lu1_hits
            + report.stats.lu2_hits
            + report.stats.cam_hits
            + report.stats.inserted_mem
            + report.stats.inserted_cam,
        50
    );
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(sim.table().peek(k).is_some(), i % 2 == 1, "key {i}");
    }
}
