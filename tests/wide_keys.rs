//! Wide-key (multi-burst bucket) coverage: the paper claims the system
//! is "scalable with respect to … number of tuples for lookup". An IPv6
//! 5-tuple (37 bytes) needs 40-byte entry slots, making each K=2 bucket
//! span three BL8 bursts — exercising the read-assembly and multi-burst
//! write paths of the simulator.

use flowlut::core::{FlowLutSim, HashCamTable, SimConfig, TableConfig};
use flowlut::traffic::{FlowKey, PacketDescriptor};

/// A synthetic IPv6-style 37-byte tuple.
fn wide_key(i: u64) -> FlowKey {
    let mut bytes = [0u8; 37];
    bytes[..8].copy_from_slice(&i.to_be_bytes());
    bytes[8..16].copy_from_slice(&(!i).to_be_bytes());
    bytes[16..24].copy_from_slice(&i.rotate_left(17).to_be_bytes());
    bytes[36] = 6;
    FlowKey::new(&bytes).unwrap()
}

fn wide_config() -> SimConfig {
    let mut cfg = SimConfig::test_small();
    cfg.table = TableConfig {
        buckets_per_mem: 1024,
        entries_per_bucket: 2,
        cam_capacity: 64,
        entry_slot_bytes: 40, // 1 + 37 rounded up: IPv6 5-tuple slots
        hash_seed: 0x1991,
    };
    cfg.geometry.rows = 512;
    cfg
}

#[test]
fn bucket_spans_three_bursts() {
    let cfg = wide_config();
    assert_eq!(cfg.table.bucket_bytes(), 80);
    assert_eq!(cfg.table.bursts_per_bucket(32), 3);
    cfg.validate().unwrap();
}

#[test]
fn functional_table_handles_wide_keys() {
    let mut t = HashCamTable::new(wide_config().table);
    for i in 0..500 {
        t.insert(wide_key(i)).unwrap();
    }
    for i in 0..500 {
        assert!(t.lookup(&wide_key(i)).is_some(), "key {i}");
    }
    assert_eq!(t.lookup(&wide_key(1000)), None);
    for i in (0..500).step_by(2) {
        assert!(t.delete(&wide_key(i)).is_some());
    }
    assert_eq!(t.len(), 250);
}

#[test]
fn sim_handles_multi_burst_buckets() {
    let mut sim = FlowLutSim::new(wide_config());
    let descs: Vec<PacketDescriptor> = (0..300)
        .map(|i| PacketDescriptor::new(i, wide_key(i % 100)))
        .collect();
    let report = sim.run(&descs);
    assert_eq!(report.completed, 300);
    assert_eq!(report.stats.drops, 0);
    assert_eq!(sim.table().len(), 100);
    // 3 bursts per bucket read: read count is a multiple of 3.
    assert_eq!(report.stats.reads_issued % 3, 0);
    assert!(report.stats.reads_issued >= 300);
    // Every flow resolved consistently.
    for d in sim.descriptors() {
        assert_eq!(sim.table().peek(&d.desc.key), d.fid);
    }
}

#[test]
fn sim_preload_and_requery_wide_keys() {
    let mut sim = FlowLutSim::new(wide_config());
    let keys: Vec<FlowKey> = (0..200).map(wide_key).collect();
    sim.preload(keys.iter().copied()).unwrap();
    let descs: Vec<PacketDescriptor> = keys
        .iter()
        .enumerate()
        .map(|(s, k)| PacketDescriptor::new(s as u64, *k))
        .collect();
    let report = sim.run(&descs);
    let s = report.stats;
    assert_eq!(
        s.cam_hits + s.lu1_hits + s.lu2_hits,
        200,
        "preloaded wide keys must all match: {s:?}"
    );
    assert_eq!(s.inserted_mem + s.inserted_cam, 0);
}

#[test]
fn wide_and_narrow_tables_have_comparable_throughput_shape() {
    // The wide configuration moves 3x the data per lookup; its
    // throughput must be lower but the engine must stay correct.
    let narrow = {
        let mut cfg = SimConfig::test_small();
        cfg.table.buckets_per_mem = 1024;
        cfg.geometry.rows = 512;
        let mut sim = FlowLutSim::new(cfg);
        let descs: Vec<PacketDescriptor> = (0..1000)
            .map(|i| {
                PacketDescriptor::new(i, FlowKey::from(flowlut::traffic::FiveTuple::from_index(i)))
            })
            .collect();
        sim.run(&descs).mdesc_per_s
    };
    let wide = {
        let mut sim = FlowLutSim::new(wide_config());
        let descs: Vec<PacketDescriptor> = (0..1000)
            .map(|i| PacketDescriptor::new(i, wide_key(i)))
            .collect();
        sim.run(&descs).mdesc_per_s
    };
    assert!(
        wide < narrow,
        "3-burst buckets must cost bandwidth: wide {wide:.1} vs narrow {narrow:.1}"
    );
    assert!(wide > narrow / 6.0, "but not pathologically: {wide:.1}");
}
