//! Steady-state allocation ratchet (dynamic counterpart of
//! `cargo xtask analyze`).
//!
//! Installs a counting global allocator and measures the heap
//! allocations performed while streaming a fixed descriptor batch
//! through each steady-state surface — the single-channel simulator,
//! the two-shard inline engine, and the service pump — after a warm-up
//! batch has filled every lazily-grown buffer. The counts are pinned
//! in `analysis/alloc_baseline.json`, within a small slack band
//! (`workload.pin_slack_allocs`, ±0.03%):
//!
//! * measured > pinned + slack — a hot-path allocation regression: fix it.
//! * measured < pinned − slack — an improvement: lower the committed
//!   baseline so the gain is locked in (the ratchet only turns one way).
//!
//! The slack exists because `HashMap` growth under churn is not fully
//! deterministic: whether an insert reuses a tombstone or consumes an
//! empty slot depends on the per-process random hash seed, so a resize
//! occasionally lands one insert earlier or later (observed spread on
//! the engine surface: ±1 allocation over 16 000 descriptors). The
//! band is three orders of magnitude tighter than any real regression.
//!
//! The pin holds in release builds (CI's static-analysis job runs this
//! test with `--release`). Debug builds only sanity-check the harness:
//! rustc is permitted to elide paired allocations, so optimisation
//! level can legitimately shift the exact count.
//!
//! Everything here runs on one thread and the workload is a seeded
//! fabric trace, so the per-thread counts are deterministic; the
//! warm-up batch is sized so steady state (buffer high-water marks,
//! hash-table capacity) is reached before measurement starts.

use std::alloc::System;

use stats_alloc::StatsAlloc;

use flowlut::core::{FlowLutSim, SimConfig};
use flowlut::engine::{EngineConfig, ExecutionMode, ShardedFlowLut};
use flowlut::service::{FlowService, ServiceConfig};
use flowlut::traffic::fabric::FabricTraceProfile;
use flowlut::traffic::PacketDescriptor;
use flowlut::{FlowPipeline, Session};

#[global_allocator]
static ALLOC: StatsAlloc<System> = StatsAlloc::new(System);

/// Descriptors streamed before measurement starts (reaches steady
/// state: scratch high-water marks, table fill comparable to the
/// measured window).
const WARMUP: usize = 4_000;
/// Descriptors streamed inside the measured window.
const MEASURED: usize = 16_000;

const BASELINE: &str = include_str!("../analysis/alloc_baseline.json");

/// Extracts the pinned integer at `section.key` from the committed
/// baseline JSON (flat two-level document; a full parser would be
/// overkill for a file this repo formats itself).
fn pinned(section: &str, key: &str) -> u64 {
    let doc = BASELINE;
    let s = doc
        .find(&format!("\"{section}\""))
        .unwrap_or_else(|| panic!("baseline JSON lacks section {section:?}"));
    let rest = &doc[s..];
    let k = rest
        .find(&format!("\"{key}\""))
        .unwrap_or_else(|| panic!("baseline section {section:?} lacks key {key:?}"));
    let after = &rest[k..];
    let colon = after.find(':').expect("key without value");
    after[colon + 1..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-integer value at {section}.{key}"))
}

fn trace() -> Vec<PacketDescriptor> {
    FabricTraceProfile::european_2012().generate(WARMUP + MEASURED)
}

/// Offers the warm-up slice, then counts this thread's allocations
/// while the measured slice streams through `pipe` at the configured
/// input rate.
fn measure_pipeline(pipe: &mut dyn FlowPipeline, descs: &[PacketDescriptor]) -> u64 {
    let (warm, meas) = descs.split_at(WARMUP);
    let mut session = Session::new(pipe);
    session.offer(warm).expect("fresh session accepts input");
    let before = ALLOC.thread_allocations();
    session.offer(meas).expect("session stays open");
    ALLOC.thread_allocations() - before
}

/// Feeds `descs` through the service's ingest queue, pumping on the
/// same thread whenever the queue fills, until the batch has fully
/// drained out of the pipeline.
fn service_feed(svc: &mut FlowService, descs: &[PacketDescriptor]) {
    let handle = svc.handle();
    for d in descs {
        while !handle.try_send(*d).expect("service open") {
            svc.pump(64);
        }
    }
    while svc.backlog() > 0 || svc.poll().in_pipeline > 0 {
        svc.pump(64);
    }
}

fn check(name: &str, measured: u64) {
    let pin = pinned("baseline_allocs", name);
    let slack = pinned("workload", "pin_slack_allocs");
    let per_1m = measured * 1_000_000 / MEASURED as u64;
    eprintln!("alloc_ratchet {name}: {measured} allocs / {MEASURED} descriptors ({per_1m} per 1M)");
    if cfg!(debug_assertions) {
        // Debug builds: harness sanity only (see module docs).
        return;
    }
    assert!(
        measured <= pin + slack,
        "{name}: {measured} steady-state allocations, baseline pins {pin} (+{slack} slack) — \
         a hot-path allocation crept in; run `cargo xtask analyze` and fix or vet it"
    );
    assert!(
        measured + slack >= pin,
        "{name}: {measured} steady-state allocations, baseline pins {pin} (−{slack} slack) — \
         improvement! lower baseline_allocs.{name} (and per_1m_descriptors) in \
         analysis/alloc_baseline.json so the ratchet locks it in"
    );
}

#[test]
fn sim_steady_state_allocations_match_baseline() {
    let descs = trace();
    let mut sim = FlowLutSim::new(SimConfig::test_small());
    check("sim", measure_pipeline(&mut sim, &descs));
}

#[test]
fn engine_2shard_steady_state_allocations_match_baseline() {
    let descs = trace();
    let mut engine = ShardedFlowLut::new(EngineConfig {
        execution: ExecutionMode::Inline,
        ..EngineConfig::test_small()
    });
    check("engine_2shard", measure_pipeline(&mut engine, &descs));
}

#[test]
fn service_pump_steady_state_allocations_match_baseline() {
    let descs = trace();
    let mut svc = FlowService::new(ServiceConfig::new(EngineConfig {
        execution: ExecutionMode::Inline,
        ..EngineConfig::test_small()
    }))
    .expect("test_small service config is valid");
    service_feed(&mut svc, &descs[..WARMUP]);
    let before = ALLOC.thread_allocations();
    service_feed(&mut svc, &descs[WARMUP..]);
    check("service_pump", ALLOC.thread_allocations() - before);
}

/// The committed baseline document itself stays well-formed: every
/// section the ratchet reads is present with integer pins, and the
/// derived per-1M figures agree with the raw pins and the measured
/// window recorded in the document.
#[test]
fn baseline_document_is_consistent() {
    assert_eq!(
        pinned("workload", "measured_descriptors"),
        MEASURED as u64,
        "baseline was produced for a different measured window"
    );
    assert_eq!(pinned("workload", "warmup_descriptors"), WARMUP as u64);
    // The jitter band must stay negligible relative to the pins —
    // anything wider would let real regressions hide inside it.
    let slack = pinned("workload", "pin_slack_allocs");
    assert!(
        slack <= 64,
        "pin_slack_allocs ({slack}) is wide enough to mask real regressions"
    );
    for name in ["sim", "engine_2shard", "service_pump"] {
        let pin = pinned("baseline_allocs", name);
        let per_1m = pinned("per_1m_descriptors", name);
        assert_eq!(
            per_1m,
            pin * 1_000_000 / MEASURED as u64,
            "per_1m_descriptors.{name} out of sync with baseline_allocs.{name}"
        );
        // The acceptance bar for this PR: the recorded pre-PR counts
        // must not be beaten upward by the committed baseline.
        let pre = pinned("pre_pr_allocs", name);
        assert!(
            pin <= pre,
            "baseline_allocs.{name} ({pin}) exceeds the recorded pre-PR count ({pre})"
        );
    }
}
