//! Scenario-matrix conformance: declarative scenarios are deterministic
//! (same spec + seed → byte-identical descriptor streams, pinned via the
//! versioned `trace_io` encoding), drive every backend in the workspace
//! to identical end-state membership when sized within capacity, and —
//! for the adversarial collision flood — provably push the paper's
//! Hash-CAM onto its overflow path while the drop/overflow counters
//! introduced on [`OpStats`] fire on every backend under overfill.

use proptest::prelude::*;
use std::collections::HashSet;

use flowlut::core::{SimConfig, TableConfig};
use flowlut::scenarios::{Scenario, ScenarioRunner};
use flowlut::traffic::trace_io::{read_trace, write_trace};
use flowlut::traffic::{FiveTuple, FlowKey};
use flowlut::{BaselineKind, Builder, FlowBackend};

/// The conformance-sized table every backend is matched to (capacity
/// 2·64·4 + 64 = 576 keys).
fn conformance_table() -> TableConfig {
    TableConfig {
        buckets_per_mem: 64,
        entries_per_bucket: 4,
        cam_capacity: 64,
        entry_slot_bytes: 16,
        hash_seed: 99,
    }
}

/// Every backend in the workspace at matched capacity.
fn registry() -> Vec<Box<dyn FlowBackend>> {
    let table = conformance_table();
    let sim = SimConfig {
        table,
        ..SimConfig::test_small()
    };
    let mut backends: Vec<Box<dyn FlowBackend>> = vec![
        Builder::new().table(table).build().expect("valid table"),
        Builder::new()
            .sim_config(sim.clone())
            .shards(1)
            .build()
            .expect("valid sim"),
        Builder::new()
            .sim_config(sim)
            .shards(2)
            .build()
            .expect("valid engine"),
    ];
    for kind in BaselineKind::ALL {
        backends.push(
            Builder::new()
                .table(table)
                .baseline(kind)
                .build()
                .expect("valid baseline"),
        );
    }
    backends
}

/// A benign scenario well under the 576-key conformance capacity: at
/// most ~220 distinct flows across all stages.
fn benign_scenario(seed: u64) -> Scenario {
    Scenario::new("benign-mix", seed)
        .uniform(60, 300)
        .zipf(60, 0.98, 300)
        .elephant_mice(4, 56, 0.8, 300)
        .churn(30, 0.02, 300)
        .burst(30, 16, 300)
}

/// End-state contract for one backend: the two-choice hashcam family
/// must hold *every* offered flow of a benign scenario (that is the
/// paper's claim); constrained baselines (e.g. single-hash, whose
/// per-bucket bound can overflow far below total capacity) must satisfy
/// `missing ≤ rejected` — every missing flow is accounted for by an
/// explicit rejection, never silently lost — and be exact whenever they
/// rejected nothing.
fn assert_end_state(backend: &mut dyn FlowBackend, offered: &HashSet<FlowKey>, rejected: u64) {
    let name = backend.name();
    let missing = offered.iter().filter(|k| !backend.contains(k)).count() as u64;
    if name.starts_with("hashcam") {
        assert_eq!(rejected, 0, "{name}: benign scenario must not hit capacity");
    }
    assert!(
        missing <= rejected,
        "{name}: {missing} flows vanished with only {rejected} rejections"
    );
    if rejected == 0 {
        assert_eq!(missing, 0, "{name}: flow missing without a rejection");
        assert_eq!(
            backend.len(),
            offered.len() as u64,
            "{name}: resident count diverges"
        );
    }
}

#[test]
fn all_backends_agree_on_end_state_membership() {
    let scenario = benign_scenario(7);
    let descs = scenario.generate();
    let offered: HashSet<FlowKey> = descs.iter().map(|d| d.key).collect();
    assert!(offered.len() < 576, "scenario must fit every backend");

    let runner = ScenarioRunner::new();
    for backend in registry().iter_mut() {
        let report = runner.run_stream(&scenario.name, &descs, backend.as_mut());
        assert_end_state(backend.as_mut(), &offered, report.rejected);
        // Probe absent keys from a disjoint index range.
        for i in 0..32u64 {
            let absent = FlowKey::from(FiveTuple::from_index(0xFFFF_0000 + i));
            assert!(
                !offered.contains(&absent) && !backend.contains(&absent),
                "{}: phantom membership",
                backend.name()
            );
        }
    }
}

#[test]
fn adversarial_flood_forces_the_cam_overflow_path() {
    let cfg = TableConfig::test_small();
    // Region capacity 2·4·2 = 16 slots; 24 mined keys must spill.
    let scenario = Scenario::new("flood", 11).adversarial_for(&cfg, 24, 4, 2);
    let runner = ScenarioRunner::new();

    // Functional table: spills counted by the new OpStats field.
    let mut table = Builder::new().table(cfg).build().expect("valid table");
    let r = runner.run(&scenario, table.as_mut());
    assert!(
        r.cam_spills >= 8,
        "expected ≥8 CAM spills, got {}",
        r.cam_spills
    );
    assert!(r.overflow_rate() > 0.0);

    // Cycle-stepped prototype: live CAM occupancy observed mid-run.
    let mut sim = Builder::new()
        .sim_config(SimConfig::test_small())
        .shards(1)
        .build()
        .expect("valid sim");
    let r = runner.run(&scenario, sim.as_mut());
    assert!(r.timed);
    assert!(r.cam_high_water > 0, "CAM occupancy never rose under flood");
}

/// Satellite: the drop/overflow counters surface uniformly. Overfilling
/// any backend far past a tiny capacity must increment `rejected`, and
/// the CAM/stash-bearing structures must count spills on the way there.
#[test]
fn overfill_increments_rejected_on_every_backend() {
    let tiny = TableConfig {
        buckets_per_mem: 2,
        entries_per_bucket: 2,
        cam_capacity: 2,
        entry_slot_bytes: 16,
        hash_seed: 7,
    };
    let sim = SimConfig {
        table: tiny,
        ..SimConfig::test_small()
    };
    let mut backends: Vec<Box<dyn FlowBackend>> = vec![
        Builder::new().table(tiny).build().expect("valid table"),
        Builder::new()
            .sim_config(sim.clone())
            .shards(1)
            .build()
            .expect("valid sim"),
        Builder::new()
            .sim_config(sim)
            .shards(2)
            .build()
            .expect("valid engine"),
    ];
    for kind in BaselineKind::ALL {
        backends.push(
            Builder::new()
                .table(tiny)
                .baseline(kind)
                .build()
                .expect("valid baseline"),
        );
    }

    // 400 distinct flows into ≤ 18-key structures: every backend must
    // reject, monotonically.
    let scenario = Scenario::new("overfill", 3).uniform(400, 400);
    let runner = ScenarioRunner::new();
    for backend in backends.iter_mut() {
        let name = backend.name();
        let before = backend.op_stats();
        let report = runner.run(&scenario, backend.as_mut());
        let after = backend.op_stats();
        assert!(
            report.rejected > 0,
            "{name}: overfill produced no rejections"
        );
        assert!(
            after.dominates(&before),
            "{name}: OpStats regressed across the run"
        );
        assert_eq!(
            after.delta_since(&before).rejected,
            report.rejected,
            "{name}: report and op-stats delta disagree"
        );
        if matches!(
            name,
            "hashcam (this paper)"
                | "hashcam-sim"
                | "hashcam-sharded"
                | "cuckoo"
                | "one-move"
                | "bloom+cam"
                | "simultaneous-hashcam"
        ) {
            assert!(
                report.cam_spills > 0,
                "{name}: CAM/stash-bearing backend spilled nothing under overfill"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same spec + seed → byte-identical descriptor streams, pinned
    /// through the versioned trace encoding (so replay-from-disk is
    /// exact), and a different seed perturbs the bytes.
    #[test]
    fn scenario_generation_is_byte_identical(
        seed in any::<u64>(),
        flows in 1u64..200,
        packets in 1usize..400,
        exponent in 0.5f64..1.5,
    ) {
        let scenario = Scenario::new("prop", seed)
            .uniform(flows, packets)
            .zipf(flows, exponent, packets);
        let a = scenario.generate();
        let b = scenario.generate();
        prop_assert_eq!(&a, &b);

        let mut bytes_a = Vec::new();
        let mut bytes_b = Vec::new();
        write_trace(&mut bytes_a, &a).expect("in-memory write");
        write_trace(&mut bytes_b, &b).expect("in-memory write");
        prop_assert_eq!(&bytes_a, &bytes_b);
        prop_assert_eq!(read_trace(&bytes_a[..]).expect("round-trip"), a);

        let other = Scenario::new("prop", seed ^ 1)
            .uniform(flows, packets)
            .zipf(flows, exponent, packets);
        let mut bytes_other = Vec::new();
        write_trace(&mut bytes_other, &other.generate()).expect("in-memory write");
        prop_assert_ne!(bytes_a, bytes_other);
    }

    /// Every backend ends a benign generated scenario with consistent
    /// membership (exact for the hashcam family, rejection-accounted
    /// for constrained baselines), for arbitrary seeds.
    #[test]
    fn backends_converge_for_any_seed(seed in any::<u64>()) {
        let scenario = benign_scenario(seed);
        let descs = scenario.generate();
        let offered: HashSet<FlowKey> = descs.iter().map(|d| d.key).collect();
        let runner = ScenarioRunner::new();
        for backend in registry().iter_mut() {
            let report = runner.run_stream(&scenario.name, &descs, backend.as_mut());
            assert_end_state(backend.as_mut(), &offered, report.rejected);
        }
    }
}
