//! Workspace task runner: `cargo xtask lint` and `cargo xtask analyze`.
//!
//! `lint` runs the repo-specific static-analysis pass described in
//! DESIGN.md §Static analysis: crate-root hygiene attributes, the
//! token-accurate `flowlut_core::sync` facade boundary, `// ordering:`
//! justifications on every atomic site, the hot-path no-panic rule
//! (with `xtask/lint_allow.txt` as the vetted-exception list, whose
//! entries must all stay live), and the committed `BENCH_*.json`
//! schema.
//!
//! `analyze` runs the call-graph-aware pass on top of the same token
//! lexer: it recovers `fn`/`impl` items and a conservative call graph
//! across all workspace crates, then reports every allocation and
//! panic site transitively reachable from the steady-state entry
//! points (`FlowLutSim::tick`, `Session::offer`, `ShardedFlowLut::tick`,
//! `FlowService::pump`, and the `FlowPipeline` impls' `push`/`poll`),
//! minus the vetted cold-path/site allow-list in
//! `xtask/analyze_allow.txt`. `--json <path>` additionally writes a
//! machine-readable report (CI uploads it as an artifact).
//!
//! Pure `std` — no external dependencies — so both commands run in the
//! offline build like everything else. The rules themselves live in
//! [`lint`] and [`analyze`] as pure functions over file contents; this
//! binary only discovers files and reports.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod analyze;
mod lexer;
mod lint;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lint::Violation;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = repo_root();
            let (files, violations) = run_lint(&root);
            if violations.is_empty() {
                println!("xtask lint: {files} files clean");
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!(
                    "xtask lint: {} violation(s) in {files} files",
                    violations.len()
                );
                ExitCode::FAILURE
            }
        }
        Some("analyze") => {
            let mut json_out: Option<PathBuf> = None;
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--json" => match args.next() {
                        Some(p) => json_out = Some(PathBuf::from(p)),
                        None => {
                            eprintln!("xtask analyze: --json needs a path");
                            return ExitCode::from(2);
                        }
                    },
                    other => {
                        eprintln!("xtask analyze: unknown flag {other:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            let root = repo_root();
            let res = run_analyze(&root);
            if let Some(path) = &json_out {
                if let Err(e) = std::fs::write(path, analyze::report_json(&res)) {
                    eprintln!("xtask analyze: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            for f in &res.findings {
                eprintln!("{f}");
            }
            println!(
                "xtask analyze: {} files, {} fns, {} call edges, {} reachable from {} entry points; {} vetted hot site(s), {} finding(s)",
                res.files,
                res.functions,
                res.edges,
                res.reachable,
                analyze::ENTRY_POINTS.len(),
                res.vetted.len(),
                res.findings.len()
            );
            if res.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!(
                "usage: cargo xtask <lint | analyze [--json <path>]>   (got {:?})",
                other.unwrap_or("<nothing>")
            );
            ExitCode::from(2)
        }
    }
}

/// The workspace root (xtask always lives one level below it).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside the workspace")
        .to_path_buf()
}

/// Crates whose sources count as hot-path for the no-panic rule.
const HOT_PATH_CRATES: [&str; 4] = ["engine", "core", "cam", "hash"];

/// Runs every lint rule over the workspace; returns the number of
/// files scanned and all violations found.
fn run_lint(root: &Path) -> (usize, Vec<Violation>) {
    let mut files = 0usize;
    let mut out: Vec<Violation> = Vec::new();
    let allowlist = lint::parse_allowlist(&read(&root.join("xtask/lint_allow.txt")));

    // crate-attrs: first-party crate roots (workspace crates, the
    // first-party vendored model checker, and this task runner; the
    // remaining vendor/ shims are ports of external crates and exempt).
    let mut roots: Vec<PathBuf> = crate_dirs(root)
        .into_iter()
        .map(|d| d.join("src/lib.rs"))
        .filter(|p| p.is_file())
        .collect();
    roots.push(root.join("vendor/loomlite/src/lib.rs"));
    roots.push(root.join("xtask/src/main.rs"));
    for path in roots {
        files += 1;
        out.extend(lint::check_crate_attrs(&rel(root, &path), &read(&path)));
    }

    // Per-file source rules over crates/*/src; collect the sources so
    // the allow-list liveness check can scan them afterwards.
    let mut scanned: Vec<(String, String)> = Vec::new();
    for dir in crate_dirs(root) {
        let crate_name = dir.file_name().and_then(|n| n.to_str()).unwrap_or_default();
        let hot = HOT_PATH_CRATES.contains(&crate_name);
        for path in rust_files(&dir.join("src")) {
            let rp = rel(root, &path);
            if lint::is_test_file(&rp) {
                continue;
            }
            files += 1;
            let src = read(&path);
            out.extend(lint::check_ordering_comments(&rp, &src));
            if crate_name == "engine" {
                out.extend(lint::check_sync_facade(&rp, &src));
            }
            if hot {
                out.extend(lint::check_no_panic(&rp, &src, &allowlist));
            }
            scanned.push((rp, src));
        }
    }

    // stale-allow: every vetted exception must still match a live site.
    out.extend(lint::check_allow_liveness(&allowlist, &scanned));

    // bench-schema: committed perf snapshots at the repo root.
    let mut bench_files: Vec<PathBuf> = std::fs::read_dir(root)
        .expect("read workspace root")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    bench_files.sort();
    for path in bench_files {
        files += 1;
        out.extend(lint::check_bench_schema(&rel(root, &path), &read(&path)));
    }

    (files, out)
}

/// Runs the call-graph analyses over every non-test source in
/// `crates/*/src`, with the allow-lists read from `xtask/`.
fn run_analyze(root: &Path) -> analyze::AnalyzeResult {
    let mut sources: Vec<(String, String)> = Vec::new();
    for dir in crate_dirs(root) {
        for path in rust_files(&dir.join("src")) {
            let rp = rel(root, &path);
            if lint::is_test_file(&rp) {
                continue;
            }
            sources.push((rp, read(&path)));
        }
    }
    let allow = analyze::parse_analyze_allow(&read(&root.join("xtask/analyze_allow.txt")));
    let panic_allow = lint::parse_allowlist(&read(&root.join("xtask/lint_allow.txt")));
    let mut res = analyze::analyze_sources(&sources, analyze::ENTRY_POINTS, &allow, &panic_allow);
    // The token-accurate facade/ordering rules are part of this pass
    // too (ISSUE rule 3); fold their violations in as findings.
    for (rp, src) in &sources {
        let mut extra = Vec::new();
        if rp.starts_with("crates/engine/src") {
            extra.extend(lint::check_sync_facade(rp, src));
        }
        extra.extend(lint::check_ordering_comments(rp, src));
        for v in extra {
            res.findings.push(analyze::Finding {
                file: v.file,
                line: v.line,
                rule: if v.rule == "sync-facade" {
                    "sync-facade"
                } else {
                    "ordering-doc"
                },
                chain: String::new(),
                msg: v.msg,
            });
        }
    }
    res
}

/// The workspace's crate directories (`crates/*`), sorted.
fn crate_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(root.join("crates"))
        .expect("read crates/")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    dirs
}

/// All `.rs` files under `dir`, recursively, sorted.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    out
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("xtask: cannot read {}: {e}", path.display()))
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The committed workspace must lint clean: this is the same check
    /// CI's static-analysis job runs, pinned as a test so a violation
    /// fails `cargo test` even without the job.
    #[test]
    fn workspace_lints_clean() {
        let (files, violations) = run_lint(&repo_root());
        assert!(files > 40, "suspiciously few files scanned: {files}");
        assert!(
            violations.is_empty(),
            "workspace lint violations:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Same pin for the call-graph pass: the committed workspace must
    /// analyze clean, with a plausibly-sized item model underneath
    /// (guards against the extractor silently recovering nothing).
    #[test]
    fn workspace_analyzes_clean() {
        let res = run_analyze(&repo_root());
        assert!(res.files > 30, "suspiciously few files: {}", res.files);
        assert!(
            res.functions > 300,
            "suspiciously few fns recovered: {}",
            res.functions
        );
        assert!(
            res.reachable > 20,
            "suspiciously small hot set: {}",
            res.reachable
        );
        assert!(
            res.findings.is_empty(),
            "workspace analyze findings:\n{}",
            res.findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
