//! `cargo xtask analyze`: call-graph-aware hot-path analysis.
//!
//! Built on the token [`lexer`](crate::lexer), this module recovers a
//! lightweight item model of the workspace — `fn` definitions, `impl`
//! blocks (inherent and trait), and a conservative name-resolution-free
//! call graph — and runs two reachability analyses over it:
//!
//! 1. **hot-alloc** — allocation sites (`Vec::…`/`vec![…]`/`Box::new`/
//!    `String::…`/`HashMap::…`/`.to_vec()`/`.clone()`/`.collect()`/
//!    `format!` plus direct `alloc::` use) transitively reachable from
//!    the steady-state entry points, minus the vetted cold-path /
//!    site allow-list in `xtask/analyze_allow.txt`;
//! 2. **hot-panic** — `.unwrap()`/`.expect(`/`panic!(` sites reachable
//!    from the same entry points, vetted through the same
//!    `xtask/lint_allow.txt` entries the line-level `no-panic` rule
//!    uses (so one vet covers both views).
//!
//! ## Soundness model (read before trusting a clean pass)
//!
//! The call graph is a *conservative over-approximation* with no name
//! resolution and no trait dispatch:
//!
//! - `name(…)` resolves to every free `fn name` in the workspace;
//! - `Type::name(…)` resolves to `fn name` in any `impl …Type` block
//!   (`Self::` uses the enclosing impl); an unknown qualifier falls
//!   back to free `fn name` (the `module::fn` case) and otherwise is
//!   treated as external (so `Instant::now(…)`-style calls on std
//!   types do not fan out to every local `new`);
//! - `self.name(…)` resolves within the enclosing impl type first,
//!   widening to all methods when the name is a trait method;
//! - `recv.name(…)` is **dyn-widened**: it resolves to every method
//!   named `name` in every impl/trait block of the workspace, because
//!   a `Box<dyn Trait>` receiver cannot be resolved statically.
//!   Calls through local type *aliases* are the known blind spot of
//!   the tightened qualified rule.
//!
//! Widening means spurious edges (a `.tick(…)` on a memory model also
//! "calls" every other `tick` in the tree); the `cold`/`coldfile`
//! entries of `analyze_allow.txt` prune the vetted-false ones, and
//! every entry must stay live or the pass fails (`stale-allow`).
//! `Vec::new()`-style non-allocating constructors are still reported:
//! a fresh container on the steady-state path exists to be filled.

use crate::lexer::{lex, Tok, TokKind};

/// A recovered `fn` definition.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Repo-relative path of the defining file.
    pub file: String,
    /// The function's bare name.
    pub name: String,
    /// Last path segment of the `impl`'d type, when defined in an impl.
    pub impl_type: Option<String>,
    /// Trait name for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Body as a token-index range into the file's comment-free stream.
    pub body: (usize, usize),
    /// Defined under `#[cfg(test)]` / `#[test]` (excluded from the graph).
    pub is_test: bool,
}

impl FnItem {
    /// `Type::name` or bare `name` for display and allow-list matching.
    pub fn display(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One call site recovered from a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call {
    /// `name(…)` — free-function call.
    Bare(String),
    /// `Qual::name(…)` — `(qualifier, name)`; qualifier may be `Self`.
    Qualified(String, String),
    /// `self.name(…)` — method on the enclosing impl type.
    SelfMethod(String),
    /// `recv.name(…)` — dyn-widened method call.
    Method(String),
}

/// A direct allocation or panic site inside one function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// 1-based source line.
    pub line: usize,
    /// `"alloc"` or `"panic"`.
    pub kind: &'static str,
    /// Human description of the matched pattern.
    pub what: String,
}

/// Container types whose associated calls count as allocation sites.
const HEAP_TYPES: [&str; 10] = [
    "Vec", "Box", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque", "Rc", "Arc",
];

/// Method names that allocate (type-blind, hence conservative).
const ALLOC_METHODS: [&str; 5] = ["to_vec", "to_owned", "to_string", "clone", "collect"];

/// Keywords that can precede `(` without being a call.
const KEYWORDS: [&str; 24] = [
    "if", "else", "while", "for", "loop", "match", "return", "fn", "in", "as", "let", "move",
    "mut", "ref", "break", "continue", "where", "use", "pub", "crate", "super", "dyn", "impl",
    "box",
];

// ---------------------------------------------------------------------
// Item extraction
// ---------------------------------------------------------------------

/// The extracted model of one file: a comment-free token stream plus
/// the `fn` items whose `body` ranges index into it.
pub struct FileModel {
    /// Comment-free token stream.
    pub toks: Vec<Tok>,
    /// Recovered `fn` items.
    pub items: Vec<FnItem>,
}

enum ScopeKind {
    Block,
    Impl {
        ty: Option<String>,
        tr: Option<String>,
    },
    Fn {
        item: usize,
    },
}

struct Scope {
    kind: ScopeKind,
    test: bool,
}

/// Extracts `fn` items (with impl context and `#[cfg(test)]` marking)
/// from `src`. Brace-tracked, attribute-aware, tolerant of anything it
/// does not model (those tokens just act as block delimiters).
pub fn extract(path: &str, src: &str) -> FileModel {
    let toks: Vec<Tok> = lex(src)
        .into_iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let mut items: Vec<FnItem> = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending_test = false;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("#") {
            // `#[…]` / `#![…]` attribute: bracket-matched skip, noting
            // `#[test]` / `#[cfg(test)]`-style contents.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct("!")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct("[")) {
                let start = j;
                let mut depth = 0i32;
                while j < toks.len() {
                    if toks[j].is_punct("[") {
                        depth += 1;
                    } else if toks[j].is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                let idents: Vec<&str> = toks[start..=j.min(toks.len() - 1)]
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.as_str())
                    .collect();
                let is_test_attr = idents.first() == Some(&"test")
                    || (idents.first() == Some(&"cfg") && idents.contains(&"test"));
                pending_test |= is_test_attr;
                i = j + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_punct("{") {
            let test = pending_test || scopes.iter().any(|s| s.test);
            scopes.push(Scope {
                kind: ScopeKind::Block,
                test,
            });
            pending_test = false;
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            if let Some(s) = scopes.pop() {
                if let ScopeKind::Fn { item } = s.kind {
                    items[item].body.1 = i;
                }
            }
            i += 1;
            continue;
        }
        if t.is_punct(";") {
            pending_test = false;
            i += 1;
            continue;
        }
        if t.is_ident("impl") {
            let (ty, tr, open) = parse_impl_header(&toks, i + 1);
            let test = pending_test || scopes.iter().any(|s| s.test);
            pending_test = false;
            match open {
                Some(open) => {
                    scopes.push(Scope {
                        kind: ScopeKind::Impl { ty, tr },
                        test,
                    });
                    i = open + 1;
                }
                None => i = toks.len(),
            }
            continue;
        }
        if t.is_ident("trait") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            // `trait Name … {`: default-method bodies inside are real
            // items (dyn-widened method calls must reach them).
            let name = toks[i + 1].text.clone();
            let mut j = i + 2;
            let mut angle = 0i32;
            while j < toks.len() {
                if toks[j].is_punct("<") {
                    angle += 1;
                } else if toks[j].is_punct(">") {
                    angle -= 1;
                } else if angle == 0 && (toks[j].is_punct("{") || toks[j].is_punct(";")) {
                    break;
                }
                j += 1;
            }
            let test = pending_test || scopes.iter().any(|s| s.test);
            pending_test = false;
            if toks.get(j).is_some_and(|t| t.is_punct("{")) {
                scopes.push(Scope {
                    kind: ScopeKind::Impl {
                        ty: None,
                        tr: Some(name),
                    },
                    test,
                });
            }
            i = j + 1;
            continue;
        }
        if t.is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = toks[i + 1].text.clone();
            let line = t.line;
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                j += 1;
            }
            let is_test = pending_test || scopes.iter().any(|s| s.test);
            pending_test = false;
            if toks.get(j).is_some_and(|t| t.is_punct("{")) {
                let (impl_type, trait_name) = scopes
                    .iter()
                    .rev()
                    .find_map(|s| match &s.kind {
                        ScopeKind::Impl { ty, tr } => Some((ty.clone(), tr.clone())),
                        _ => None,
                    })
                    .unwrap_or((None, None));
                let item = items.len();
                items.push(FnItem {
                    file: path.to_string(),
                    name,
                    impl_type,
                    trait_name,
                    line,
                    body: (j + 1, j + 1),
                    is_test,
                });
                scopes.push(Scope {
                    kind: ScopeKind::Fn { item },
                    test: is_test,
                });
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    FileModel { toks, items }
}

/// Parses an `impl` header starting at token `from`, returning the
/// impl'd type's last path segment, the trait name for trait impls,
/// and the index of the opening `{` (None on malformed input).
/// Generics are skipped by `<`/`>` depth (safe: the lexer fuses `->`).
fn parse_impl_header(toks: &[Tok], from: usize) -> (Option<String>, Option<String>, Option<usize>) {
    let mut angle = 0i32;
    let mut before_for: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut collecting = true;
    let mut j = from;
    while j < toks.len() {
        let t = &toks[j];
        if angle == 0 && t.is_punct("{") {
            let (ty, tr) = if saw_for {
                (after_for, before_for)
            } else {
                (before_for, None)
            };
            return (ty, tr, Some(j));
        }
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if angle == 0 && t.kind == TokKind::Ident {
            match t.text.as_str() {
                "for" => saw_for = true,
                "where" => collecting = false,
                "dyn" | "mut" => {}
                name if collecting => {
                    if saw_for {
                        after_for = Some(name.to_string());
                    } else {
                        before_for = Some(name.to_string());
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    (None, None, None)
}

// ---------------------------------------------------------------------
// Body scanning: calls + direct alloc/panic sites
// ---------------------------------------------------------------------

/// Calls and direct sites recovered from one function body.
#[derive(Debug, Default)]
pub struct BodyScan {
    /// Outgoing call sites, in source order.
    pub calls: Vec<Call>,
    /// Direct allocation / panic sites.
    pub sites: Vec<Site>,
}

/// Scans the token range `body` of `toks` for call sites and for the
/// direct allocation / panic patterns listed in the module docs.
pub fn scan_body(toks: &[Tok], body: (usize, usize)) -> BodyScan {
    let mut out = BodyScan::default();
    for k in body.0..body.1.min(toks.len()) {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let next = toks.get(k + 1);
        // Macro invocation: `name!(` / `name![` / `name!{`.
        if next.is_some_and(|n| n.is_punct("!"))
            && toks
                .get(k + 2)
                .is_some_and(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"))
        {
            match name {
                "vec" => out.sites.push(Site {
                    line: t.line,
                    kind: "alloc",
                    what: "`vec![…]` allocates".to_string(),
                }),
                "format" => out.sites.push(Site {
                    line: t.line,
                    kind: "alloc",
                    what: "`format!(…)` allocates".to_string(),
                }),
                "panic" | "unreachable" | "todo" | "unimplemented" => out.sites.push(Site {
                    line: t.line,
                    kind: "panic",
                    what: format!("`{name}!(…)`"),
                }),
                _ => {}
            }
            continue;
        }
        // Direct `alloc::` use.
        if name == "alloc" && next.is_some_and(|n| n.is_punct("::")) {
            out.sites.push(Site {
                line: t.line,
                kind: "alloc",
                what: "direct `alloc::` use".to_string(),
            });
            continue;
        }
        // Call: `name(`.
        if !next.is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        let prev = k.checked_sub(1).map(|p| &toks[p]);
        let prev2 = k.checked_sub(2).map(|p| &toks[p]);
        if prev.is_some_and(|p| p.is_punct(".")) {
            if ALLOC_METHODS.contains(&name) {
                out.sites.push(Site {
                    line: t.line,
                    kind: "alloc",
                    what: format!("`.{name}(…)` allocates (type-blind: vet if the receiver is not heap-backed)"),
                });
            }
            if name == "unwrap" || name == "expect" {
                out.sites.push(Site {
                    line: t.line,
                    kind: "panic",
                    what: format!("`.{name}(…)`"),
                });
            }
            if prev2.is_some_and(|p| p.is_ident("self")) {
                out.calls.push(Call::SelfMethod(name.to_string()));
            } else {
                out.calls.push(Call::Method(name.to_string()));
            }
        } else if prev.is_some_and(|p| p.is_punct("::"))
            && prev2.is_some_and(|p| p.kind == TokKind::Ident)
        {
            let q = prev2.map(|p| p.text.clone()).unwrap_or_default();
            if HEAP_TYPES.contains(&q.as_str()) {
                out.sites.push(Site {
                    line: t.line,
                    kind: "alloc",
                    what: format!("`{q}::{name}(…)` constructs a heap container"),
                });
            } else {
                out.calls.push(Call::Qualified(q, name.to_string()));
            }
        } else if prev.is_some_and(|p| p.is_ident("fn")) {
            // nested `fn name(` definition, not a call
        } else if !KEYWORDS.contains(&name) {
            out.calls.push(Call::Bare(name.to_string()));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Allow-list: cold barriers + vetted sites
// ---------------------------------------------------------------------

/// Parsed `xtask/analyze_allow.txt`.
#[derive(Debug, Default)]
pub struct AnalyzeAllow {
    /// `cold name` / `cold Type::name`: vetted cold-path functions the
    /// BFS must not descend into.
    pub cold: Vec<String>,
    /// `coldfile <path-substring>`: every function in a matching file is a
    /// cold barrier (for whole modules reached only via dyn-widening).
    pub coldfiles: Vec<String>,
    /// `site <path-suffix> :: <line-substring>`: vetted hot-path
    /// allocation sites — the open-item-3 work list.
    pub sites: Vec<(String, String)>,
    /// Malformed lines, reported as findings.
    pub errors: Vec<(usize, String)>,
}

/// Parses the analyze allow-list (blank lines and `#` comments ignored).
pub fn parse_analyze_allow(text: &str) -> AnalyzeAllow {
    let mut out = AnalyzeAllow::default();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("cold ") {
            out.cold.push(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("coldfile ") {
            out.coldfiles.push(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("site ") {
            match rest.split_once(" :: ") {
                Some((p, frag)) => out
                    .sites
                    .push((p.trim().to_string(), frag.trim().to_string())),
                None => out
                    .errors
                    .push((i + 1, "`site` entry needs `path :: substring`".to_string())),
            }
        } else {
            out.errors.push((
                i + 1,
                "expected `cold …`, `coldfile …`, or `site … :: …`".to_string(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// The analysis proper
// ---------------------------------------------------------------------

/// A steady-state entry point.
#[derive(Debug, Clone, Copy)]
pub enum Entry {
    /// `fn name` in any `impl …Type` block.
    Type(&'static str, &'static str),
    /// `fn name` in any `impl Trait for …` block.
    Trait(&'static str, &'static str),
}

impl Entry {
    fn display(&self) -> String {
        match self {
            Entry::Type(t, n) => format!("{t}::{n}"),
            Entry::Trait(t, n) => format!("<impl {t}>::{n}"),
        }
    }
}

/// The steady-state entry points of the workspace: one descriptor's
/// worth of work flows through these and nothing else once a run is
/// warm (see DESIGN.md §Static analysis).
pub const ENTRY_POINTS: &[Entry] = &[
    Entry::Type("FlowLutSim", "tick"),
    Entry::Type("Session", "offer"),
    Entry::Type("ShardedFlowLut", "tick"),
    Entry::Type("FlowService", "pump"),
    Entry::Trait("FlowPipeline", "push"),
    Entry::Trait("FlowPipeline", "poll"),
];

/// One analysis finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line (0 for file/entry-level findings).
    pub line: usize,
    /// `hot-alloc` / `hot-panic` / `stale-allow` / `entry-missing` /
    /// `allow-syntax`.
    pub rule: &'static str,
    /// Shortest call chain from an entry point (empty when n/a).
    pub chain: String,
    /// What is wrong.
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )?;
        if !self.chain.is_empty() {
            write!(f, "\n    via {}", self.chain)?;
        }
        Ok(())
    }
}

/// A vetted site that stayed on the hot path (the work list).
#[derive(Debug, Clone)]
pub struct VettedSite {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// `"alloc"` or `"panic"`.
    pub kind: &'static str,
    /// The matched pattern.
    pub what: String,
    /// Function containing the site (`Type::name` form).
    pub func: String,
    /// 1-based line where that function is defined.
    pub func_line: usize,
}

/// Everything `cargo xtask analyze` computed.
pub struct AnalyzeResult {
    /// Files analyzed.
    pub files: usize,
    /// `fn` items recovered (non-test).
    pub functions: usize,
    /// Call-graph edges.
    pub edges: usize,
    /// Functions reachable from the entry points (cold barriers pruned).
    pub reachable: usize,
    /// Violations (empty on a clean tree).
    pub findings: Vec<Finding>,
    /// Vetted hot-path sites (allocs + panics) — the residual work list.
    pub vetted: Vec<VettedSite>,
    /// Cold barriers the BFS actually hit.
    pub cold_hits: Vec<String>,
}

/// Runs the reachability analyses over in-memory `(path, source)`
/// pairs. `panic_allow` is the parsed `lint_allow.txt`; `allow` the
/// parsed `analyze_allow.txt`. Separated from file discovery so the
/// seeded-violation tests drive it directly.
pub fn analyze_sources(
    files: &[(String, String)],
    entries: &[Entry],
    allow: &AnalyzeAllow,
    panic_allow: &[(String, String)],
) -> AnalyzeResult {
    // Extract every file's model once; keep raw lines for allow matching.
    let mut items: Vec<FnItem> = Vec::new();
    let mut scans: Vec<BodyScan> = Vec::new();
    let mut lines: std::collections::HashMap<&str, Vec<&str>> = std::collections::HashMap::new();
    for (path, src) in files {
        lines.insert(path.as_str(), src.lines().collect());
        let model = extract(path, src);
        for it in model.items {
            if it.is_test {
                continue;
            }
            scans.push(scan_body(&model.toks, it.body));
            items.push(it);
        }
    }

    let mut findings: Vec<Finding> = Vec::new();
    for (n, msg) in &allow.errors {
        findings.push(Finding {
            file: "xtask/analyze_allow.txt".to_string(),
            line: *n,
            rule: "allow-syntax",
            chain: String::new(),
            msg: msg.clone(),
        });
    }

    // Name-resolution maps.
    use std::collections::HashMap;
    let mut free_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut by_type: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    let mut methods_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (id, it) in items.iter().enumerate() {
        match (&it.impl_type, &it.trait_name) {
            (Some(t), _) => {
                by_type.entry((t, &it.name)).or_default().push(id);
                methods_by_name.entry(&it.name).or_default().push(id);
            }
            (None, Some(tr)) => {
                // Trait default method: a dyn-widened target, also
                // addressable UFCS-style as `Trait::name(…)`.
                by_type.entry((tr, &it.name)).or_default().push(id);
                methods_by_name.entry(&it.name).or_default().push(id);
            }
            (None, None) => free_by_name.entry(&it.name).or_default().push(id),
        }
    }

    // Edges.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); items.len()];
    let mut edge_count = 0usize;
    for (id, scan) in scans.iter().enumerate() {
        let mut targets: Vec<usize> = Vec::new();
        for call in &scan.calls {
            match call {
                Call::Bare(n) => targets.extend(free_by_name.get(n.as_str()).into_iter().flatten()),
                Call::Qualified(q, n) => {
                    let q = if q == "Self" {
                        items[id].impl_type.clone().unwrap_or_default()
                    } else {
                        q.clone()
                    };
                    match by_type.get(&(q.as_str(), n.as_str())) {
                        Some(ids) => targets.extend(ids),
                        // `module::fn` — otherwise the qualifier is an
                        // external type and the call leaves the workspace.
                        None => targets.extend(free_by_name.get(n.as_str()).into_iter().flatten()),
                    }
                }
                Call::SelfMethod(n) => {
                    let ty = items[id].impl_type.clone().unwrap_or_default();
                    match by_type.get(&(ty.as_str(), n.as_str())) {
                        Some(ids) => targets.extend(ids),
                        None => {
                            targets.extend(methods_by_name.get(n.as_str()).into_iter().flatten())
                        }
                    }
                }
                Call::Method(n) => {
                    targets.extend(methods_by_name.get(n.as_str()).into_iter().flatten())
                }
            }
        }
        targets.sort_unstable();
        targets.dedup();
        edge_count += targets.len();
        edges[id] = targets;
    }

    // Entry points (each must resolve, or renames silently kill the pass).
    let mut roots: Vec<usize> = Vec::new();
    for e in entries {
        let ids: Vec<usize> = match e {
            Entry::Type(t, n) => items
                .iter()
                .enumerate()
                .filter(|(_, it)| it.impl_type.as_deref() == Some(*t) && it.name == *n)
                .map(|(i, _)| i)
                .collect(),
            Entry::Trait(t, n) => items
                .iter()
                .enumerate()
                .filter(|(_, it)| it.trait_name.as_deref() == Some(*t) && it.name == *n)
                .map(|(i, _)| i)
                .collect(),
        };
        if ids.is_empty() {
            findings.push(Finding {
                file: String::new(),
                line: 0,
                rule: "entry-missing",
                chain: String::new(),
                msg: format!(
                    "entry point `{}` resolves to no function — update ENTRY_POINTS after the rename",
                    e.display()
                ),
            });
        }
        roots.extend(ids);
    }
    roots.sort_unstable();
    roots.dedup();

    // Cold-barrier matching.
    let mut cold_used = vec![false; allow.cold.len()];
    let mut coldfile_used = vec![false; allow.coldfiles.len()];
    let is_cold = |it: &FnItem, cold_used: &mut Vec<bool>, coldfile_used: &mut Vec<bool>| -> bool {
        let mut hit = false;
        let disp = it.display();
        for (i, c) in allow.cold.iter().enumerate() {
            if *c == disp || (!c.contains("::") && *c == it.name && it.impl_type.is_none()) {
                cold_used[i] = true;
                hit = true;
            }
        }
        for (i, p) in allow.coldfiles.iter().enumerate() {
            if it.file.contains(p.as_str()) {
                coldfile_used[i] = true;
                hit = true;
            }
        }
        hit
    };
    // Definition-level liveness: a `cold` entry must name a function
    // that exists at all (reported separately from never-reached).
    let cold_defined: Vec<bool> = allow
        .cold
        .iter()
        .map(|c| {
            items
                .iter()
                .any(|it| *c == it.display() || (!c.contains("::") && *c == it.name))
        })
        .collect();

    // BFS with parent tracking for shortest chains.
    let mut parent: Vec<Option<usize>> = vec![None; items.len()];
    let mut seen = vec![false; items.len()];
    let mut queue = std::collections::VecDeque::new();
    for &r in &roots {
        if is_cold(&items[r], &mut cold_used, &mut coldfile_used) {
            continue;
        }
        if !seen[r] {
            seen[r] = true;
            queue.push_back(r);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &edges[u] {
            if seen[v] {
                continue;
            }
            if is_cold(&items[v], &mut cold_used, &mut coldfile_used) {
                continue;
            }
            seen[v] = true;
            parent[v] = Some(u);
            queue.push_back(v);
        }
    }
    let chain_of = |mut id: usize| -> String {
        let mut names = vec![items[id].display()];
        while let Some(p) = parent[id] {
            names.push(items[p].display());
            id = p;
        }
        names.reverse();
        names.join(" → ")
    };

    // Findings: sites inside reachable functions, minus vetted entries.
    let mut vetted: Vec<VettedSite> = Vec::new();
    let mut site_used = vec![false; allow.sites.len()];
    let mut panic_used = vec![false; panic_allow.len()];
    for (id, it) in items.iter().enumerate() {
        if !seen[id] {
            continue;
        }
        let file_lines = &lines[it.file.as_str()];
        for site in &scans[id].sites {
            let text = file_lines.get(site.line - 1).copied().unwrap_or_default();
            let (rule, list, used): (&'static str, &[(String, String)], &mut Vec<bool>) =
                match site.kind {
                    "alloc" => ("hot-alloc", &allow.sites, &mut site_used),
                    _ => ("hot-panic", panic_allow, &mut panic_used),
                };
            let mut allowed = false;
            for (i, (p, frag)) in list.iter().enumerate() {
                if it.file.ends_with(p.as_str()) && text.contains(frag.as_str()) {
                    used[i] = true;
                    allowed = true;
                }
            }
            if allowed {
                vetted.push(VettedSite {
                    file: it.file.clone(),
                    line: site.line,
                    kind: site.kind,
                    what: site.what.clone(),
                    func: it.display(),
                    func_line: it.line,
                });
            } else {
                findings.push(Finding {
                    file: it.file.clone(),
                    line: site.line,
                    rule,
                    chain: chain_of(id),
                    msg: format!(
                        "{} in `{}`, reachable from a steady-state entry point — {}",
                        site.what,
                        it.display(),
                        if site.kind == "alloc" {
                            "hoist to a scratch buffer, or vet it in xtask/analyze_allow.txt"
                        } else {
                            "return an error, or vet the invariant in xtask/lint_allow.txt"
                        }
                    ),
                });
            }
        }
    }

    // Stale allow entries are hard errors (the ratchet must not rot).
    for (i, c) in allow.cold.iter().enumerate() {
        if !cold_used[i] {
            findings.push(Finding {
                file: "xtask/analyze_allow.txt".to_string(),
                line: 0,
                rule: "stale-allow",
                chain: String::new(),
                msg: if cold_defined[i] {
                    format!("`cold {c}` was never reached from an entry point — prune it")
                } else {
                    format!("`cold {c}` names no function in the workspace — prune it")
                },
            });
        }
    }
    for (i, p) in allow.coldfiles.iter().enumerate() {
        if !coldfile_used[i] {
            findings.push(Finding {
                file: "xtask/analyze_allow.txt".to_string(),
                line: 0,
                rule: "stale-allow",
                chain: String::new(),
                msg: format!("`coldfile {p}` was never reached from an entry point — prune it"),
            });
        }
    }
    for (i, (p, frag)) in allow.sites.iter().enumerate() {
        if !site_used[i] {
            findings.push(Finding {
                file: "xtask/analyze_allow.txt".to_string(),
                line: 0,
                rule: "stale-allow",
                chain: String::new(),
                msg: format!(
                    "`site {p} :: {frag}` matches no reachable allocation site — prune it"
                ),
            });
        }
    }
    // Note: lint_allow.txt staleness is owned by `cargo xtask lint`
    // (whose no-panic rule scopes entries); not re-reported here.

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    vetted.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    let mut cold_hits: Vec<String> = allow
        .cold
        .iter()
        .enumerate()
        .filter(|(i, _)| cold_used[*i])
        .map(|(_, c)| c.clone())
        .chain(
            allow
                .coldfiles
                .iter()
                .enumerate()
                .filter(|(i, _)| coldfile_used[*i])
                .map(|(_, p)| format!("file:{p}")),
        )
        .collect();
    cold_hits.sort();

    AnalyzeResult {
        files: files.len(),
        functions: items.len(),
        edges: edge_count,
        reachable: seen.iter().filter(|&&s| s).count(),
        findings,
        vetted,
        cold_hits,
    }
}

/// Renders the `--json` report (hand-rolled: no serde in the image).
pub fn report_json(res: &AnalyzeResult) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"flowlut_analyze_v1\",\n");
    out.push_str(&format!("  \"files\": {},\n", res.files));
    out.push_str(&format!("  \"functions\": {},\n", res.functions));
    out.push_str(&format!("  \"call_edges\": {},\n", res.edges));
    out.push_str(&format!("  \"reachable_functions\": {},\n", res.reachable));
    out.push_str("  \"entry_points\": [");
    let entries: Vec<String> = ENTRY_POINTS
        .iter()
        .map(|e| format!("\"{}\"", esc(&e.display())))
        .collect();
    out.push_str(&entries.join(", "));
    out.push_str("],\n  \"findings\": [\n");
    let rows: Vec<String> = res
        .findings
        .iter()
        .map(|f| {
            format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"chain\": \"{}\", \"msg\": \"{}\"}}",
                esc(&f.file),
                f.line,
                f.rule,
                esc(&f.chain),
                esc(&f.msg)
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n  \"vetted_hot_sites\": [\n");
    let rows: Vec<String> = res
        .vetted
        .iter()
        .map(|v| {
            format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"kind\": \"{}\", \"func\": \"{}\", \"func_line\": {}, \"what\": \"{}\"}}",
                esc(&v.file),
                v.line,
                v.kind,
                esc(&v.func),
                v.func_line,
                esc(&v.what)
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n  \"cold_barriers_hit\": [");
    let rows: Vec<String> = res
        .cold_hits
        .iter()
        .map(|c| format!("\"{}\"", esc(c)))
        .collect();
    out.push_str(&rows.join(", "));
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_tick() -> Vec<Entry> {
        vec![Entry::Type("FlowLutSim", "tick")]
    }

    fn files(srcs: &[(&str, &str)]) -> Vec<(String, String)> {
        srcs.iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    #[test]
    fn extracts_impl_methods_and_free_fns() {
        let src = "impl FlowLutSim {\n    pub fn tick(&mut self) { helper(); }\n}\nfn helper() {}\nimpl FlowPipeline for FlowLutSim {\n    fn push(&mut self) {}\n}\n";
        let m = extract("a.rs", src);
        assert_eq!(m.items.len(), 3);
        assert_eq!(m.items[0].display(), "FlowLutSim::tick");
        assert_eq!(m.items[1].display(), "helper");
        assert_eq!(m.items[2].trait_name.as_deref(), Some("FlowPipeline"));
        assert_eq!(m.items[2].impl_type.as_deref(), Some("FlowLutSim"));
    }

    #[test]
    fn generic_impl_headers_resolve_to_base_type() {
        let src = "impl<P: FlowPipeline> Session<P> {\n    fn offer(&mut self) {}\n}\nimpl<T> fmt::Display for Wrapper<T> where T: Copy {\n    fn fmt(&self) {}\n}\n";
        let m = extract("a.rs", src);
        assert_eq!(m.items[0].display(), "Session::offer");
        assert_eq!(m.items[1].impl_type.as_deref(), Some("Wrapper"));
        assert_eq!(m.items[1].trait_name.as_deref(), Some("Display"));
    }

    #[test]
    fn cfg_test_items_are_excluded() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { live(); }\n    #[test]\n    fn u() {}\n}\n#[test]\nfn also_test() {}\nfn live2() {}\n";
        let m = extract("a.rs", src);
        let live: Vec<&str> = m
            .items
            .iter()
            .filter(|i| !i.is_test)
            .map(|i| i.name.as_str())
            .collect();
        assert_eq!(live, vec!["live", "live2"]);
    }

    #[test]
    fn planted_hot_alloc_is_found_with_chain() {
        let src = "impl FlowLutSim {\n    pub fn tick(&mut self) { self.step(); }\n    fn step(&mut self) { let v = vec![0u8; 4]; drop(v); }\n}\n";
        let res = analyze_sources(
            &files(&[("crates/core/src/sim/mod.rs", src)]),
            &entry_tick(),
            &AnalyzeAllow::default(),
            &[],
        );
        let alloc: Vec<&Finding> = res
            .findings
            .iter()
            .filter(|f| f.rule == "hot-alloc")
            .collect();
        assert_eq!(alloc.len(), 1, "{:?}", res.findings);
        assert_eq!(alloc[0].line, 3);
        assert_eq!(alloc[0].chain, "FlowLutSim::tick → FlowLutSim::step");
    }

    #[test]
    fn transitive_panic_is_found_across_files() {
        let a = "impl FlowLutSim {\n    pub fn tick(&mut self) { deep_helper(1); }\n}\n";
        let b = "pub fn deep_helper(x: u32) { inner(x); }\nfn inner(x: u32) { x.checked_add(1).unwrap(); }\n";
        let res = analyze_sources(
            &files(&[
                ("crates/core/src/sim/mod.rs", a),
                ("crates/core/src/util.rs", b),
            ]),
            &entry_tick(),
            &AnalyzeAllow::default(),
            &[],
        );
        let p: Vec<&Finding> = res
            .findings
            .iter()
            .filter(|f| f.rule == "hot-panic")
            .collect();
        assert_eq!(p.len(), 1, "{:?}", res.findings);
        assert_eq!(p[0].chain, "FlowLutSim::tick → deep_helper → inner");
    }

    #[test]
    fn cold_barrier_stops_traversal_and_unreached_code_is_free() {
        let src = "impl FlowLutSim {\n    pub fn tick(&mut self) { self.cold_setup(); }\n    fn cold_setup(&mut self) { let v = vec![1]; drop(v); }\n    fn never_called(&mut self) { let v = vec![2]; drop(v); }\n}\n";
        let mut allow = AnalyzeAllow::default();
        allow.cold.push("FlowLutSim::cold_setup".to_string());
        let res = analyze_sources(
            &files(&[("crates/core/src/sim/mod.rs", src)]),
            &entry_tick(),
            &allow,
            &[],
        );
        assert!(
            res.findings.is_empty(),
            "cold + unreached allocs must not be findings: {:?}",
            res.findings
        );
        assert_eq!(res.cold_hits, vec!["FlowLutSim::cold_setup"]);
    }

    #[test]
    fn vetted_site_is_reported_as_worklist_not_finding() {
        let src = "impl FlowLutSim {\n    pub fn tick(&mut self) { let b = chunk.to_vec(); push(b); }\n}\nfn push(_b: u8) {}\n";
        let mut allow = AnalyzeAllow::default();
        allow.sites.push((
            "crates/core/src/sim/mod.rs".to_string(),
            "chunk.to_vec()".to_string(),
        ));
        let res = analyze_sources(
            &files(&[("crates/core/src/sim/mod.rs", src)]),
            &entry_tick(),
            &allow,
            &[],
        );
        assert!(res.findings.is_empty(), "{:?}", res.findings);
        assert_eq!(res.vetted.len(), 1);
        assert_eq!(res.vetted[0].kind, "alloc");
        assert_eq!(res.vetted[0].func, "FlowLutSim::tick");
    }

    #[test]
    fn panic_allow_reuses_lint_allow_entries() {
        let src = "impl FlowLutSim {\n    pub fn tick(&mut self) { self.q.pop().expect(\"queue invariant\"); }\n}\n";
        let panic_allow = vec![(
            "crates/core/src/sim/mod.rs".to_string(),
            ".expect(\"queue invariant\")".to_string(),
        )];
        let res = analyze_sources(
            &files(&[("crates/core/src/sim/mod.rs", src)]),
            &entry_tick(),
            &AnalyzeAllow::default(),
            &panic_allow,
        );
        assert!(res.findings.is_empty(), "{:?}", res.findings);
        assert_eq!(res.vetted.len(), 1);
        assert_eq!(res.vetted[0].kind, "panic");
    }

    #[test]
    fn stale_allow_entries_are_hard_errors() {
        let src = "impl FlowLutSim {\n    pub fn tick(&mut self) {}\n}\n";
        let mut allow = AnalyzeAllow::default();
        allow.cold.push("FlowLutSim::gone".to_string());
        allow
            .coldfiles
            .push("crates/baselines/src/dead.rs".to_string());
        allow.sites.push((
            "crates/core/src/sim/mod.rs".to_string(),
            "nothing here".to_string(),
        ));
        let res = analyze_sources(
            &files(&[("crates/core/src/sim/mod.rs", src)]),
            &entry_tick(),
            &allow,
            &[],
        );
        let stale: Vec<&Finding> = res
            .findings
            .iter()
            .filter(|f| f.rule == "stale-allow")
            .collect();
        assert_eq!(stale.len(), 3, "{:?}", res.findings);
    }

    #[test]
    fn missing_entry_point_is_reported() {
        let res = analyze_sources(
            &files(&[("a.rs", "fn f() {}")]),
            &[Entry::Type("FlowLutSim", "tick")],
            &AnalyzeAllow::default(),
            &[],
        );
        assert!(res.findings.iter().any(|f| f.rule == "entry-missing"));
    }

    #[test]
    fn dyn_widened_method_calls_reach_all_impls() {
        // `self.mem.tick()` must widen to every `tick` method — here the
        // DDR3 model's, whose vec![] then surfaces with a chain.
        let a = "impl FlowLutSim {\n    pub fn tick(&mut self) { self.mem.tick(); }\n}\n";
        let b = "impl Ddr3Model {\n    pub fn tick(&mut self) -> Vec<u8> { vec![0] }\n}\n";
        let res = analyze_sources(
            &files(&[
                ("crates/core/src/sim/mod.rs", a),
                ("crates/ddr3/src/model.rs", b),
            ]),
            &entry_tick(),
            &AnalyzeAllow::default(),
            &[],
        );
        let alloc: Vec<&Finding> = res
            .findings
            .iter()
            .filter(|f| f.rule == "hot-alloc")
            .collect();
        assert_eq!(alloc.len(), 1, "{:?}", res.findings);
        assert_eq!(alloc[0].chain, "FlowLutSim::tick → Ddr3Model::tick");
    }

    #[test]
    fn allocs_in_strings_and_comments_are_invisible() {
        let src = "impl FlowLutSim {\n    // vec![] in a comment\n    pub fn tick(&mut self) { let s = \"vec![0]; Box::new(1)\"; use_it(s); }\n}\nfn use_it(_s: &str) {}\n";
        let res = analyze_sources(
            &files(&[("crates/core/src/sim/mod.rs", src)]),
            &entry_tick(),
            &AnalyzeAllow::default(),
            &[],
        );
        assert!(res.findings.is_empty(), "{:?}", res.findings);
    }

    #[test]
    fn heap_constructor_calls_are_alloc_sites() {
        let src = "impl FlowLutSim {\n    pub fn tick(&mut self) { let b = Box::new(1); let v: Vec<u8> = Vec::with_capacity(8); drop((b, v)); }\n}\n";
        let res = analyze_sources(
            &files(&[("crates/core/src/sim/mod.rs", src)]),
            &entry_tick(),
            &AnalyzeAllow::default(),
            &[],
        );
        assert_eq!(
            res.findings
                .iter()
                .filter(|f| f.rule == "hot-alloc")
                .count(),
            2,
            "{:?}",
            res.findings
        );
    }

    #[test]
    fn allow_parser_flags_malformed_lines() {
        let a = parse_analyze_allow(
            "cold A::b\ncoldfile x.rs\nsite p.rs :: frag\nbogus line\nsite missing-sep\n",
        );
        assert_eq!(a.cold, vec!["A::b"]);
        assert_eq!(a.coldfiles, vec!["x.rs"]);
        assert_eq!(a.sites.len(), 1);
        assert_eq!(a.errors.len(), 2);
    }

    #[test]
    fn report_json_is_parseable_and_complete() {
        let src =
            "impl FlowLutSim {\n    pub fn tick(&mut self) { let v = vec![0]; drop(v); }\n}\n";
        let res = analyze_sources(
            &files(&[("crates/core/src/sim/mod.rs", src)]),
            &entry_tick(),
            &AnalyzeAllow::default(),
            &[],
        );
        let doc = crate::lint::parse_json(&report_json(&res)).expect("report must be valid JSON");
        assert!(doc.get("findings").is_some());
        assert!(doc.get("reachable_functions").is_some());
        assert!(matches!(
            doc.get("schema"),
            Some(crate::lint::Json::Str(s)) if s == "flowlut_analyze_v1"
        ));
    }
}
