//! The repo-specific lint rules behind `cargo xtask lint`.
//!
//! Each rule is a pure function over `(path, source)` returning the
//! violations it found, so every rule is unit-tested both ways: clean
//! input passes, seeded violations are reported (the acceptance
//! criterion that the linter demonstrably *fails* when it should).
//!
//! | rule            | scope                               | requirement |
//! |-----------------|-------------------------------------|-------------|
//! | `crate-attrs`   | first-party crate roots             | `#![forbid(unsafe_code)]` + `#![deny(missing_docs)]` |
//! | `sync-facade`   | `crates/engine/src` (non-test)      | no direct `std::sync`/`std::thread`/`std::hint` — use `flowlut_core::sync` |
//! | `ordering-doc`  | `crates/*/src` (non-test)           | every `Ordering::` site has an adjacent `// ordering:` justification |
//! | `no-panic`      | engine/core/cam/hash src (non-test) | no `.unwrap()`/`.expect(`/`panic!(` outside `xtask/lint_allow.txt` |
//! | `stale-allow`   | `xtask/lint_allow.txt`              | every entry still matches ≥1 live panic site |
//! | `bench-schema`  | committed `BENCH_*.json`            | parses as JSON and keeps its schema keys |
//!
//! The source rules (`sync-facade`, `ordering-doc`, `no-panic`) are
//! **token-accurate**: they lex the file with [`crate::lexer`] instead
//! of substring-matching lines, so patterns inside string literals,
//! raw strings, and comments can no longer produce false positives.
//! `#[cfg(test)]` scoping still uses the line-level tracker
//! ([`non_test_lines`]) to decide which token lines are live.
//!
//! The vendored shims under `vendor/` (ports of external crates) are
//! exempt from `crate-attrs` — except `vendor/loomlite`, which is
//! first-party.

use std::collections::HashSet;
use std::fmt;

use crate::lexer::{lex, Tok, TokKind};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line (0 for file-level violations).
    pub line: usize,
    /// Rule identifier (the table in the module docs).
    pub rule: &'static str,
    /// What is wrong and how to fix it.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

fn violation(file: &str, line: usize, rule: &'static str, msg: String) -> Violation {
    Violation {
        file: file.to_string(),
        line,
        rule,
        msg,
    }
}

/// Yields `(1-based line number, line)` for the lines of `src` outside
/// `#[cfg(test)]` items. An inline `#[cfg(test)] mod … { … }` is skipped
/// by brace tracking; a path module declaration (`#[cfg(test)] mod t;`)
/// only skips the declaration itself (the module *file* must be excluded
/// by the caller's file scoping — see [`is_test_file`]).
pub fn non_test_lines(src: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut skipping = false;
    let mut opened = false;
    let mut depth = 0i64;
    for (i, line) in src.lines().enumerate() {
        if !skipping && line.trim_start().starts_with("#[cfg(test)]") {
            skipping = true;
            opened = false;
            depth = 0;
            continue;
        }
        if skipping {
            let opens = line.matches('{').count() as i64;
            let closes = line.matches('}').count() as i64;
            depth += opens - closes;
            if opens > 0 {
                opened = true;
            }
            if opened && depth <= 0 {
                skipping = false;
            } else if !opened && line.trim_end().ends_with(';') {
                // `#[cfg(test)] mod tests;` — only the declaration is
                // gated; resume on the next line.
                skipping = false;
            }
            continue;
        }
        out.push((i + 1, line));
    }
    out
}

/// Whether `path` (repo-relative, `/`-separated) is test code by
/// location: an integration-test tree, a bench tree, or a path-based
/// unit-test module (`…/tests.rs`).
pub fn is_test_file(path: &str) -> bool {
    path.contains("/tests/") || path.contains("/benches/") || path.ends_with("/tests.rs")
}

/// `crate-attrs`: a first-party crate root must forbid unsafe code and
/// deny missing docs.
pub fn check_crate_attrs(path: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for attr in ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"] {
        if !src.lines().any(|l| l.trim() == attr) {
            out.push(violation(
                path,
                0,
                "crate-attrs",
                format!("crate root is missing `{attr}`"),
            ));
        }
    }
    out
}

/// The 1-based line numbers outside `#[cfg(test)]` items.
fn live_lines(src: &str) -> HashSet<usize> {
    non_test_lines(src).iter().map(|(n, _)| *n).collect()
}

/// `sync-facade`: engine sources must reach every synchronization
/// primitive through `flowlut_core::sync`, never `std` directly —
/// otherwise the model suite silently stops covering that primitive.
/// Token-accurate: `std::sync` inside a string or comment is content,
/// not a violation.
pub fn check_sync_facade(path: &str, src: &str) -> Vec<Violation> {
    let live = live_lines(src);
    let toks: Vec<Tok> = lex(src)
        .into_iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let mut out = Vec::new();
    for w in toks.windows(3) {
        if w[0].is_ident("std")
            && w[1].is_punct("::")
            && w[2].kind == TokKind::Ident
            && ["sync", "thread", "hint"].contains(&w[2].text.as_str())
            && live.contains(&w[0].line)
        {
            out.push(violation(
                path,
                w[0].line,
                "sync-facade",
                format!(
                    "direct `std::{}` use — import it from `flowlut_core::sync` so the model checker sees it",
                    w[2].text
                ),
            ));
        }
    }
    out
}

/// `ordering-doc`: every atomic-ordering choice must carry a nearby
/// `// ordering:` justification (same line or the 4 lines above), so a
/// reviewer — and the next refactor — can tell load-bearing SeqCst from
/// incidental. Token-accurate: `Ordering::` in strings is invisible,
/// `use` statements and `cmp::Ordering` are recognized structurally.
pub fn check_ordering_comments(path: &str, src: &str) -> Vec<Violation> {
    const WINDOW: usize = 4;
    let live = live_lines(src);
    let all = lex(src);
    let justified: HashSet<usize> = all
        .iter()
        .filter(|t| t.kind == TokKind::Comment && t.text.contains("ordering:"))
        .map(|t| t.line)
        .collect();
    let toks: Vec<&Tok> = all.iter().filter(|t| t.kind != TokKind::Comment).collect();
    let mut out = Vec::new();
    let mut stmt_start = true;
    let mut in_use = false;
    for (i, t) in toks.iter().enumerate() {
        if stmt_start && t.is_ident("use") {
            in_use = true;
        }
        if t.is_punct(";") {
            in_use = false;
        }
        stmt_start = t.is_punct(";") || t.is_punct("{") || t.is_punct("}");
        let is_site = t.is_ident("Ordering")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident);
        if !is_site || in_use || !live.contains(&t.line) {
            continue;
        }
        // `cmp::Ordering` (and `std::cmp::Ordering`) is not an atomic site.
        if i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].is_ident("cmp") {
            continue;
        }
        let documented = (t.line.saturating_sub(WINDOW)..=t.line).any(|l| justified.contains(&l));
        if !documented {
            out.push(violation(
                path,
                t.line,
                "ordering-doc",
                "atomic `Ordering::` site without an adjacent `// ordering:` justification"
                    .to_string(),
            ));
        }
    }
    out
}

/// `no-panic`: hot-path modules must not unwrap/expect/panic except at
/// sites vetted in the allowlist (`xtask/lint_allow.txt`, entries of the
/// form `path :: line-substring`). Token-accurate: `.unwrap()` in a
/// string literal is content. Allow-list fragments still match against
/// the raw source line, so existing entries keep working.
pub fn check_no_panic(path: &str, src: &str, allowlist: &[(String, String)]) -> Vec<Violation> {
    let live = live_lines(src);
    let raw: Vec<&str> = src.lines().collect();
    let toks: Vec<Tok> = lex(src)
        .into_iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let token = if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            if t.is_ident("unwrap") {
                ".unwrap()"
            } else {
                ".expect("
            }
        } else if t.is_ident("panic")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
        {
            "panic!("
        } else {
            continue;
        };
        if !live.contains(&t.line) {
            continue;
        }
        let line = raw.get(t.line - 1).copied().unwrap_or_default();
        let allowed = allowlist
            .iter()
            .any(|(p, frag)| path.ends_with(p.as_str()) && line.contains(frag.as_str()));
        if !allowed {
            out.push(violation(
                path,
                t.line,
                "no-panic",
                format!(
                    "`{token}` in a hot-path module — return an error, or vet the invariant in xtask/lint_allow.txt"
                ),
            ));
        }
    }
    out
}

/// `stale-allow`: every `lint_allow.txt` entry must still match at
/// least one live (non-test) panic site in the scanned sources, so the
/// vetted-exception list cannot silently rot as code moves.
pub fn check_allow_liveness(
    allowlist: &[(String, String)],
    scanned: &[(String, String)],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (p, frag) in allowlist {
        let alive = scanned.iter().any(|(path, src)| {
            path.ends_with(p.as_str())
                && non_test_lines(src).iter().any(|(_, line)| {
                    line.contains(frag.as_str())
                        // The full panic-site vocabulary: the no-panic
                        // lint flags the first three; `cargo xtask
                        // analyze` vets the assertion macros through
                        // this same list, so they keep entries alive.
                        && [
                            ".unwrap()",
                            ".expect(",
                            "panic!(",
                            "unreachable!(",
                            "todo!(",
                            "unimplemented!(",
                        ]
                        .iter()
                        .any(|t| line.contains(t))
                })
        });
        if !alive {
            out.push(violation(
                "xtask/lint_allow.txt",
                0,
                "stale-allow",
                format!("`{p} :: {frag}` no longer matches any live panic site — prune it"),
            ));
        }
    }
    out
}

/// Parses the allowlist format: one `path :: substring` entry per line;
/// blank lines and `#` comments ignored.
pub fn parse_allowlist(text: &str) -> Vec<(String, String)> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (p, frag) = l.split_once(" :: ")?;
            Some((p.trim().to_string(), frag.trim().to_string()))
        })
        .collect()
}

// ---------------------------------------------------------------------
// bench-schema: a minimal JSON reader + schema-key checks
// ---------------------------------------------------------------------

/// Minimal JSON value for schema validation (no number parsing beyond
/// syntax — the perf gates in CI do the numeric checks).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, kept as its source text.
    Num(String),
    /// A string literal (unescaped content not interpreted).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parses `text` as a single JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect_byte(b: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {} (found {:?})",
            want as char,
            *pos,
            b.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_keyword(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        other => Err(format!(
            "unexpected {:?} at byte {}",
            other.map(|&c| c as char),
            *pos
        )),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected `{word}` at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && (b[*pos].is_ascii_digit() || b"+-.eE".contains(&b[*pos])) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if text.parse::<f64>().is_err() {
        return Err(format!("bad number `{text}` at byte {start}"));
    }
    Ok(Json::Num(text.to_string()))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(b, pos, b'"')?;
    let start = *pos;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                let s = std::str::from_utf8(&b[start..*pos])
                    .map_err(|e| e.to_string())?
                    .to_string();
                *pos += 1;
                return Ok(s);
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err(format!("unterminated string starting at byte {start}"))
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => {
                return Err(format!(
                    "expected `,` or `]` at byte {} (found {:?})",
                    *pos,
                    other.map(|&c| c as char)
                ))
            }
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect_byte(b, pos, b':')?;
        fields.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            other => {
                return Err(format!(
                    "expected `,` or `}}` at byte {} (found {:?})",
                    *pos,
                    other.map(|&c| c as char)
                ))
            }
        }
    }
}

/// Schema keys every committed perf snapshot must keep, per bench name
/// (the CI perf gates and `scripts/` tooling read them by key).
fn required_keys(bench: &str) -> &'static [&'static str] {
    match bench {
        "engine" => &[
            "bench",
            "mode",
            "workload",
            "per_shard_input_rate_mhz",
            "single_channel_mdesc_per_s",
            "results",
            "acceptance_4_shards_ge_2x",
        ],
        "parallel" => &[
            "bench",
            "mode",
            "host_parallelism",
            "workload",
            "results",
            "acceptance_applicable",
            "acceptance_threaded_4_shards_ge_1p5x",
        ],
        "memory" => &[
            "bench",
            "mode",
            "workload",
            "line_rate_mpps",
            "results",
            "verdicts",
            "acceptance_sram_ge_ddr3",
        ],
        "service" => &[
            "bench",
            "mode",
            "workload",
            "results",
            "acceptance_expiry_sustained_ge_0p9x_off",
        ],
        "scenarios" => &[
            "bench",
            "mode",
            "packets_per_stage",
            "results",
            "acceptance_adversarial_cam_exercised",
            "acceptance_baseline_degrades",
        ],
        _ => &["bench", "mode", "results"],
    }
}

/// Keys every `results` row must keep, per bench name. All benches
/// identify shard count and completion total; the memory sweep also
/// names its model and line-rate verdict per row.
fn required_row_keys(bench: &str) -> &'static [&'static str] {
    match bench {
        "memory" => &[
            "model",
            "shards",
            "mdesc_per_s",
            "headroom_vs_400gbe",
            "holds_line_rate",
            "completed",
        ],
        "service" => &[
            "shards",
            "profile",
            "completed",
            "sustained_mdesc_per_s",
            "expired_ttl",
            "pressure_evicted",
        ],
        "scenarios" => &[
            "scenario",
            "backend",
            "mdesc_per_s",
            "drop_rate",
            "overflow_rate",
            "cam_spills",
            "cam_high_water",
        ],
        _ => &["shards", "completed"],
    }
}

/// `bench-schema`: `path` must parse as JSON and keep the schema keys
/// for its `bench` kind; every `results` row must identify its shard
/// count and completion total.
pub fn check_bench_schema(path: &str, text: &str) -> Vec<Violation> {
    let doc = match parse_json(text) {
        Ok(doc) => doc,
        Err(e) => return vec![violation(path, 0, "bench-schema", format!("not JSON: {e}"))],
    };
    let mut out = Vec::new();
    let bench = match doc.get("bench") {
        Some(Json::Str(b)) => b.clone(),
        _ => {
            out.push(violation(
                path,
                0,
                "bench-schema",
                "missing string key `bench`".to_string(),
            ));
            String::new()
        }
    };
    for key in required_keys(&bench) {
        if doc.get(key).is_none() {
            out.push(violation(
                path,
                0,
                "bench-schema",
                format!("missing schema key `{key}`"),
            ));
        }
    }
    match doc.get("results") {
        Some(Json::Arr(rows)) if !rows.is_empty() => {
            for (i, row) in rows.iter().enumerate() {
                for key in required_row_keys(&bench) {
                    if row.get(key).is_none() {
                        out.push(violation(
                            path,
                            0,
                            "bench-schema",
                            format!("results[{i}] is missing key `{key}`"),
                        ));
                    }
                }
            }
        }
        Some(_) | None => out.push(violation(
            path,
            0,
            "bench-schema",
            "`results` must be a non-empty array".to_string(),
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // -- the linter must pass on clean input --

    #[test]
    fn clean_crate_root_passes() {
        let src = "//! Docs.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n";
        assert_eq!(check_crate_attrs("crates/x/src/lib.rs", src), vec![]);
    }

    #[test]
    fn facade_imports_pass() {
        let src = "use flowlut_core::sync::{Arc, Mutex};\nfn f() {}\n";
        assert_eq!(check_sync_facade("crates/engine/src/a.rs", src), vec![]);
    }

    #[test]
    fn documented_ordering_passes() {
        let src = "fn f(a: &A) {\n    // ordering: Dekker store half.\n    a.x.store(1, Ordering::SeqCst);\n    a.y.load(Ordering::Relaxed); // ordering: gated by x.\n}\n";
        assert_eq!(check_ordering_comments("crates/e/src/p.rs", src), vec![]);
    }

    #[test]
    fn allowlisted_expect_passes() {
        let allow =
            parse_allowlist("# vetted\ncrates/core/src/a.rs :: .expect(\"checked above\")\n");
        let src = "fn f() {\n    x.expect(\"checked above\");\n}\n";
        assert_eq!(check_no_panic("crates/core/src/a.rs", src, &allow), vec![]);
    }

    #[test]
    fn committed_bench_files_pass() {
        // The real committed snapshots must satisfy their own schema.
        let root = env!("CARGO_MANIFEST_DIR");
        for name in [
            "BENCH_engine.json",
            "BENCH_parallel.json",
            "BENCH_memory.json",
            "BENCH_service.json",
            "BENCH_scenarios.json",
        ] {
            let text = std::fs::read_to_string(format!("{root}/../{name}")).unwrap();
            assert_eq!(check_bench_schema(name, &text), vec![], "{name}");
        }
    }

    // -- and must demonstrably fail on violations --

    #[test]
    fn missing_crate_attrs_flagged() {
        let v = check_crate_attrs("crates/x/src/lib.rs", "//! Docs.\npub fn f() {}\n");
        assert_eq!(v.len(), 2);
        assert!(v[0].msg.contains("forbid(unsafe_code)"));
        assert!(v[1].msg.contains("deny(missing_docs)"));
    }

    #[test]
    fn direct_std_sync_flagged() {
        let src = "use std::sync::Mutex;\nfn f() { std::thread::spawn(|| {}); }\n";
        let v = check_sync_facade("crates/engine/src/a.rs", src);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 1);
        assert!(v[1].msg.contains("std::thread"));
    }

    #[test]
    fn std_sync_in_test_module_is_exempt() {
        let src =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n    fn t() {}\n}\n";
        assert_eq!(check_sync_facade("crates/engine/src/a.rs", src), vec![]);
    }

    #[test]
    fn undocumented_ordering_flagged() {
        let src = "fn f(a: &A) {\n    a.x.store(1, Ordering::SeqCst);\n}\n";
        let v = check_ordering_comments("crates/e/src/p.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn ordering_comment_outside_window_flagged() {
        let src = "// ordering: too far away.\n\n\n\n\n\nfn f(a: &A) {\n    a.x.store(1, Ordering::SeqCst);\n}\n";
        assert_eq!(check_ordering_comments("crates/e/src/p.rs", src).len(), 1);
    }

    #[test]
    fn cmp_ordering_and_imports_are_exempt() {
        let src = "use std::sync::atomic::Ordering;\nfn f(a: u32, b: u32) -> std::cmp::Ordering {\n    a.cmp(&b)\n}\n";
        assert_eq!(check_ordering_comments("crates/e/src/p.rs", src), vec![]);
    }

    #[test]
    fn unvetted_unwrap_flagged() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"oops\");\n    panic!(\"boom\");\n}\n";
        let v = check_no_panic("crates/core/src/a.rs", src, &[]);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].rule, "no-panic");
    }

    #[test]
    fn unwrap_in_test_block_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert_eq!(check_no_panic("crates/core/src/a.rs", src, &[]), vec![]);
    }

    #[test]
    fn allowlist_is_path_scoped() {
        let allow = parse_allowlist("crates/core/src/a.rs :: .unwrap()");
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(check_no_panic("crates/core/src/a.rs", src, &allow), vec![]);
        assert_eq!(check_no_panic("crates/core/src/b.rs", src, &allow).len(), 1);
    }

    #[test]
    fn broken_json_flagged() {
        let v = check_bench_schema("BENCH_x.json", "{\"bench\": ");
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("not JSON"));
    }

    #[test]
    fn dropped_schema_key_flagged() {
        let text =
            r#"{"bench": "engine", "mode": "quick", "results": [{"shards": 1, "completed": 5}]}"#;
        let v = check_bench_schema("BENCH_engine.json", text);
        let missing: Vec<&str> = v
            .iter()
            .filter_map(|x| x.msg.strip_prefix("missing schema key `"))
            .map(|m| m.trim_end_matches('`'))
            .collect();
        assert_eq!(
            missing,
            vec![
                "workload",
                "per_shard_input_rate_mhz",
                "single_channel_mdesc_per_s",
                "acceptance_4_shards_ge_2x"
            ]
        );
    }

    #[test]
    fn dropped_memory_schema_key_flagged() {
        // Seeded violation: a memory snapshot missing its acceptance
        // key and one per-row verdict key must fail on both counts.
        let text = r#"{"bench": "memory", "mode": "quick",
            "workload": {}, "line_rate_mpps": 595.0, "verdicts": {},
            "results": [{"model": "ddr3", "shards": 1,
                "mdesc_per_s": 76.1, "headroom_vs_400gbe": 0.13,
                "completed": 16000}]}"#;
        let v = check_bench_schema("BENCH_memory.json", text);
        assert!(v.iter().any(|x| x
            .msg
            .contains("missing schema key `acceptance_sram_ge_ddr3`")));
        assert!(v.iter().any(|x| x
            .msg
            .contains("results[0] is missing key `holds_line_rate`")));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn dropped_service_schema_key_flagged() {
        // Seeded violation: a service snapshot missing its acceptance
        // key and one per-row lifecycle counter must fail on both.
        let text = r#"{"bench": "service", "mode": "quick",
            "workload": {},
            "results": [{"shards": 1, "profile": "expiry",
                "completed": 12288, "sustained_mdesc_per_s": 30.7,
                "expired_ttl": 1152}]}"#;
        let v = check_bench_schema("BENCH_service.json", text);
        assert!(v.iter().any(|x| x
            .msg
            .contains("missing schema key `acceptance_expiry_sustained_ge_0p9x_off`")));
        assert!(v.iter().any(|x| x
            .msg
            .contains("results[0] is missing key `pressure_evicted`")));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn dropped_scenarios_schema_key_flagged() {
        // Seeded violation: a scenarios snapshot missing one acceptance
        // key and one per-row rate key must fail on both counts.
        let text = r#"{"bench": "scenarios", "mode": "quick",
            "packets_per_stage": 3000,
            "acceptance_adversarial_cam_exercised": true,
            "results": [{"scenario": "adversarial-flood",
                "backend": "hashcam (this paper)", "mdesc_per_s": 1.8,
                "drop_rate": 0.0, "cam_spills": 16,
                "cam_high_water": 0}]}"#;
        let v = check_bench_schema("BENCH_scenarios.json", text);
        assert!(v.iter().any(|x| x
            .msg
            .contains("missing schema key `acceptance_baseline_degrades`")));
        assert!(v
            .iter()
            .any(|x| x.msg.contains("results[0] is missing key `overflow_rate`")));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn result_row_without_shards_flagged() {
        let text = r#"{"bench": "z", "mode": "quick", "results": [{"completed": 5}]}"#;
        let v = check_bench_schema("BENCH_z.json", text);
        assert!(v.iter().any(|x| x.msg.contains("results[0]")));
    }

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let doc =
            parse_json(r#"{"a": [1, -2.5e3, "x\"y"], "b": {"c": null, "d": false}}"#).unwrap();
        assert!(matches!(doc.get("a"), Some(Json::Arr(items)) if items.len() == 3));
        assert_eq!(doc.get("b").and_then(|b| b.get("c")), Some(&Json::Null));
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("[1, ]").is_err());
    }

    // -- token accuracy: literals and comments are not code --

    #[test]
    fn facade_token_in_string_or_comment_passes() {
        let src =
            "// std::sync is mentioned here\nfn f() { let s = \"std::thread::spawn\"; g(s); }\n";
        assert_eq!(check_sync_facade("crates/engine/src/a.rs", src), vec![]);
    }

    #[test]
    fn panic_token_in_string_passes_but_code_flagged() {
        let src = "fn f() {\n    log(\"never .unwrap() here\");\n    x.unwrap();\n}\n";
        let v = check_no_panic("crates/core/src/a.rs", src, &[]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn ordering_token_in_raw_string_passes() {
        let src = "fn f() -> &'static str { r#\"store(1, Ordering::SeqCst)\"# }\n";
        assert_eq!(check_ordering_comments("crates/e/src/p.rs", src), vec![]);
    }

    #[test]
    fn multiline_use_of_ordering_is_exempt() {
        // The old line-grep rule needed `use ` on the same line; the
        // token rule tracks the statement.
        let src = "use std::sync::atomic::{\n    AtomicU64,\n    Ordering::{self, SeqCst},\n};\nfn f() {}\n";
        assert_eq!(check_ordering_comments("crates/e/src/p.rs", src), vec![]);
    }

    // -- stale allow entries are hard errors --

    #[test]
    fn live_allow_entry_passes_liveness() {
        let scanned = vec![(
            "crates/core/src/a.rs".to_string(),
            "fn f() {\n    x.expect(\"checked above\");\n}\n".to_string(),
        )];
        let allow = parse_allowlist("crates/core/src/a.rs :: .expect(\"checked above\")");
        assert_eq!(check_allow_liveness(&allow, &scanned), vec![]);
    }

    #[test]
    fn stale_allow_entry_flagged() {
        // Entry's file exists but the fragment is gone; a second entry
        // only matches inside a test module. Both are stale.
        let scanned = vec![(
            "crates/core/src/a.rs".to_string(),
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n".to_string(),
        )];
        let allow = parse_allowlist(
            "crates/core/src/a.rs :: .expect(\"vanished\")\ncrates/core/src/a.rs :: .unwrap()",
        );
        let v = check_allow_liveness(&allow, &scanned);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].rule, "stale-allow");
    }

    #[test]
    fn path_module_test_decl_does_not_swallow_file() {
        let src = "#[cfg(test)]\nmod tests;\nfn f() { x.unwrap(); }\n";
        assert_eq!(check_no_panic("crates/core/src/a.rs", src, &[]).len(), 1);
        assert!(is_test_file("crates/core/src/sim/tests.rs"));
        assert!(!is_test_file("crates/core/src/sim/mod.rs"));
    }
}
