//! A small hand-rolled Rust token lexer for the analysis passes.
//!
//! `cargo xtask analyze` (and the token-accurate lint rules) must not
//! confuse source code with the *text* of string literals, comments,
//! raw strings, or char literals — the line-grep rules of PR 6 could.
//! This lexer produces a flat token stream with 1-based line numbers,
//! handling exactly the lexical subtleties that matter for that goal:
//!
//! - line comments and **nested** block comments (kept as [`TokKind::Comment`]
//!   tokens so the `// ordering:` rule can still see justifications);
//! - string literals with escapes, byte strings, and raw (byte) strings
//!   with an arbitrary number of `#` guards;
//! - char literals vs lifetimes (`'a'` vs `'a`), including escaped
//!   chars (`'\''`, `'\n'`);
//! - identifiers/keywords, numbers, and punctuation, with `::` and `->`
//!   fused into single tokens (so angle-bracket matching in `impl`
//!   headers never miscounts the `>` of a return arrow).
//!
//! It is *not* a full Rust lexer: float exponent signs, shebangs and
//! nested generic shifts (`>>`) are left as individual punctuation,
//! which is sufficient (and tested) for the item extractor built on top.

/// Token classification, as coarse as the analyses need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `impl`, `Vec`, …).
    Ident,
    /// A lifetime such as `'a` or `'static` (text excludes the quote).
    Lifetime,
    /// Numeric literal (uninterpreted source text).
    Num,
    /// String / raw-string / byte-string / char literal. The text is the
    /// literal *contents are not preserved* — only a placeholder — so no
    /// downstream rule can accidentally match inside it.
    Literal,
    /// A `//…` or `/*…*/` comment; text preserved for `// ordering:`.
    Comment,
    /// Punctuation. Multi-char only for `::` and `->`.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line the token starts on.
    pub line: usize,
    /// Coarse classification.
    pub kind: TokKind,
    /// Source text (placeholder `"\"\""` / `"''"` for literals).
    pub text: String,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Lexes `src` into a token stream. Never fails: unterminated literals
/// and stray bytes degrade to best-effort tokens, which is the right
/// trade for an analysis pass that must not crash the build on a
/// half-edited file.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        b: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.b.len() {
            let c = self.b[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_lit(),
                b'r' | b'b' if self.raw_or_byte_prefix() => self.prefixed_lit(),
                b'\'' => self.char_or_lifetime(),
                _ if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.pos + ahead).copied()
    }

    fn push(&mut self, line: usize, kind: TokKind, text: &str) {
        self.out.push(Tok {
            line,
            kind,
            text: text.to_string(),
        });
    }

    fn count_newlines(&mut self, start: usize, end: usize) {
        self.line += self.b[start..end].iter().filter(|&&c| c == b'\n').count();
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.b.len() && self.b[self.pos] != b'\n' {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
        let line = self.line;
        self.push(line, TokKind::Comment, &text);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.b.len() && depth > 0 {
            if self.b[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.b[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        self.count_newlines(start, self.pos);
        let text = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
        self.push(line, TokKind::Comment, &text);
    }

    fn string_lit(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.pos += 1; // opening quote
        while self.pos < self.b.len() {
            match self.b[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.count_newlines(start, self.pos.min(self.b.len()));
        self.push(line, TokKind::Literal, "\"\"");
    }

    /// True when the current `r`/`b` starts a raw/byte literal rather
    /// than an identifier: `r"`, `r#"`, `b"`, `b'`, `br"`, `br#"`.
    fn raw_or_byte_prefix(&self) -> bool {
        let mut i = self.pos;
        if self.b[i] == b'b' {
            i += 1;
            if self.b.get(i) == Some(&b'\'') {
                return true; // byte char b'x'
            }
        }
        if self.b.get(i) == Some(&b'r') {
            i += 1;
            while self.b.get(i) == Some(&b'#') {
                i += 1;
            }
        }
        self.b.get(i) == Some(&b'"') && i > self.pos
    }

    fn prefixed_lit(&mut self) {
        let start = self.pos;
        let line = self.line;
        if self.b[self.pos] == b'b' {
            self.pos += 1;
            if self.b.get(self.pos) == Some(&b'\'') {
                // byte char: b'x' / b'\n'
                self.pos += 1;
                if self.b.get(self.pos) == Some(&b'\\') {
                    self.pos += 1;
                }
                self.pos += 1; // the char
                if self.b.get(self.pos) == Some(&b'\'') {
                    self.pos += 1;
                }
                self.push(line, TokKind::Literal, "''");
                return;
            }
        }
        if self.b.get(self.pos) == Some(&b'r') {
            // raw (byte) string: r"…", r#"…"#, r##"…"##, …
            self.pos += 1;
            let mut hashes = 0usize;
            while self.b.get(self.pos) == Some(&b'#') {
                hashes += 1;
                self.pos += 1;
            }
            self.pos += 1; // opening quote
            loop {
                match self.b.get(self.pos) {
                    None => break,
                    Some(b'"') => {
                        let tail = &self.b[self.pos + 1..];
                        if tail.len() >= hashes && tail[..hashes].iter().all(|&c| c == b'#') {
                            self.pos += 1 + hashes;
                            break;
                        }
                        self.pos += 1;
                    }
                    Some(_) => self.pos += 1,
                }
            }
            self.count_newlines(start, self.pos.min(self.b.len()));
            self.push(line, TokKind::Literal, "\"\"");
        } else {
            // plain byte string: b"…"
            self.string_lit();
        }
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime): after the quote,
    /// an escape is always a char; an ident char followed by `'` is a
    /// char; an ident start *not* closed by `'` is a lifetime.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let next = self.peek(1);
        let is_lifetime = matches!(next, Some(c) if c == b'_' || c.is_ascii_alphabetic())
            && self.peek(2) != Some(b'\'');
        if is_lifetime {
            self.pos += 1;
            let start = self.pos;
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            let text = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
            self.push(line, TokKind::Lifetime, &text);
            return;
        }
        // Char literal: '<char>' with possible escape.
        self.pos += 1;
        match self.peek(0) {
            Some(b'\\') => {
                self.pos += 2; // backslash + escaped char (covers '\'' '\n' '\\')
                               // hex/unicode escapes: skip to closing quote below
            }
            Some(_) => {
                // possibly multi-byte UTF-8: advance one byte, close below
                self.pos += 1;
            }
            None => {}
        }
        while self.pos < self.b.len() && self.b[self.pos] != b'\'' && self.b[self.pos] != b'\n' {
            self.pos += 1;
        }
        if self.b.get(self.pos) == Some(&b'\'') {
            self.pos += 1;
        }
        self.push(line, TokKind::Literal, "''");
    }

    fn ident(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
        self.push(line, TokKind::Ident, &text);
    }

    fn number(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        // Fractional part — but never eat the first dot of `0..10`.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
        self.push(line, TokKind::Num, &text);
    }

    fn punct(&mut self) {
        let line = self.line;
        if self.b[self.pos] == b':' && self.peek(1) == Some(b':') {
            self.pos += 2;
            self.push(line, TokKind::Punct, "::");
        } else if self.b[self.pos] == b'-' && self.peek(1) == Some(b'>') {
            self.pos += 2;
            self.push(line, TokKind::Punct, "->");
        } else {
            let c = self.b[self.pos] as char;
            self.pos += 1;
            self.push(line, TokKind::Punct, &c.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = lex("fn f(a: u32) -> Vec<u8> { a.to_vec() }");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "fn", "f", "(", "a", ":", "u32", ")", "->", "Vec", "<", "u8", ">", "{", "a", ".",
                "to_vec", "(", ")", "}"
            ]
        );
        assert!(toks[7].is_punct("->"));
    }

    #[test]
    fn string_contents_are_opaque() {
        // `panic!(` inside a string must not surface as code tokens.
        let toks = lex(r#"let s = "call panic!(now)";"#);
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        // The `"#` inside the raw string is content, not a terminator;
        // `Vec::new` inside it must not leak out as tokens.
        let src = r###"let s = r##"quote "# and Vec::new() stay inside"##; x()"###;
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("Vec")));
        assert!(toks.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = lex(r#"let a = b"panic!("; let c = b'\''; done()"#);
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
        assert!(toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::Comment);
        assert!(toks[1].is_ident("fn"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokKind::Literal && t == "''")
                .count(),
            2
        );
    }

    #[test]
    fn static_lifetime_and_escaped_quote_char() {
        let toks = lex("let s: &'static str = x; let q = '\\'';");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            1
        );
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "fn a() {}\n/* two\nlines */\nfn b() {}\nlet s = \"x\ny\";\nfn c() {}";
        let toks = lex(src);
        let line_of = |name: &str| toks.iter().find(|t| t.is_ident(name)).unwrap().line;
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 4);
        assert_eq!(line_of("c"), 7);
    }

    #[test]
    fn comments_preserved_for_ordering_rule() {
        let toks = lex("// ordering: release pairs with acquire in pop\nx.store(1);");
        assert!(toks[0].kind == TokKind::Comment && toks[0].text.contains("ordering:"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let texts: Vec<String> = lex("for i in 0..10 { f(1.5, 0xff); }")
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert!(texts.contains(&"0".to_string()));
        assert!(texts.contains(&"10".to_string()));
        assert!(texts.contains(&"1.5".to_string()));
        assert!(texts.contains(&"0xff".to_string()));
    }
}
