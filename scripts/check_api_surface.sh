#!/usr/bin/env bash
# Public-API golden-file check.
#
# Regenerates the `cargo doc` item listing of every flowlut crate (the
# facade plus all workspace members; vendored shims excluded) and diffs
# it against the committed snapshot at docs/api_surface.txt. CI runs this
# so any change to the public surface — a renamed trait, a dropped
# method's page, a new type — shows up as a reviewable diff instead of a
# silent break.
#
# Usage:
#   scripts/check_api_surface.sh            # verify against the snapshot
#   scripts/check_api_surface.sh --update   # rewrite the snapshot
#
# The listing is derived from rustdoc's per-crate all.html ("list of all
# items"): hrefs are normalised to `crate::module::kind.Name` lines and
# sorted. The format is stable for a pinned toolchain; if a rustdoc
# upgrade ever changes it wholesale, re-run with --update in the same PR
# that bumps the toolchain.

set -euo pipefail
cd "$(dirname "$0")/.."

SNAPSHOT=docs/api_surface.txt

cargo doc --workspace --no-deps --quiet

listing() {
    for all in target/doc/flowlut/all.html target/doc/flowlut_*/all.html; do
        [ -f "$all" ] || continue
        crate=$(basename "$(dirname "$all")")
        grep -o 'href="[^"]*"' "$all" |
            sed -e 's/^href="//' -e 's/"$//' |
            grep -v 'static\.files' |
            grep -vE '^(#|https?:|\.\./|index\.html)' |
            sed -e 's|\.html$||' -e 's|/|::|g' -e "s|^|${crate}::|"
    done | LC_ALL=C sort -u
}

if [ "${1:-}" = "--update" ]; then
    mkdir -p "$(dirname "$SNAPSHOT")"
    listing > "$SNAPSHOT"
    echo "wrote $(wc -l < "$SNAPSHOT") public items to $SNAPSHOT"
    exit 0
fi

if [ ! -f "$SNAPSHOT" ]; then
    echo "error: $SNAPSHOT missing — run scripts/check_api_surface.sh --update" >&2
    exit 1
fi

if ! diff -u "$SNAPSHOT" <(listing); then
    cat >&2 <<'EOF'

error: the public API surface differs from the committed snapshot.
If the change is deliberate, regenerate it with
    scripts/check_api_surface.sh --update
and commit the result alongside your change.
EOF
    exit 1
fi
echo "API surface matches $SNAPSHOT ($(wc -l < "$SNAPSHOT") items)"
