//! Offline shim of the subset of the `proptest` 1.x API this workspace
//! uses.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a minimal property-testing harness with the same call-site
//! syntax: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! ranges/tuples/`any` as strategies, `prop::collection::{vec,
//! hash_set}`, `prop::sample::Index`, [`prop_oneof!`] and the
//! `prop_assert*` macros. Differences from real proptest: no input
//! shrinking (a failing case panics with the generated values in the
//! assert message), no persistence of failing seeds, and a default of
//! 64 cases per property (deterministically seeded from the test name,
//! so runs are reproducible). See DESIGN.md §Vendored shims.

use std::marker::PhantomData;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case RNG (SplitMix64 seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Builds the RNG for case number `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the fully qualified test name, mixed with the case.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is negligible for test-size ranges.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Two's-complement span is correct for signed starts too.
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = ((u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64()))
                    % span) as $t;
                self.start.wrapping_add(draw)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Two's-complement span; cannot overflow u128 for <=64-bit types.
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let draw = ((u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64()))
                    % span) as $t;
                lo.wrapping_add(draw)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical arbitrary-value strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A uniform choice between boxed strategies (behind [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

/// Boxes a strategy for [`Union`]; used by the [`prop_oneof!`] expansion.
pub fn boxed_strategy<T, S>(s: S) -> Box<dyn Strategy<Value = T>>
where
    S: Strategy<Value = T> + 'static,
{
    Box::new(s)
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            if self.lo == self.hi {
                self.lo
            } else {
                self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates vectors of `element` values (proptest's `collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `HashSet<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = HashSet::with_capacity(target);
            // Bounded retries: duplicates shrink the set instead of hanging.
            for _ in 0..target.saturating_mul(10) + 16 {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.new_value(rng));
            }
            set
        }
    }

    /// Generates hash sets of `element` values.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling helpers (subset of `proptest::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `[0, len)`.
        ///
        /// # Panics
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((u128::from(self.0) * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// The `prop::` path used at call sites (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything call sites import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// A uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::boxed_strategy($s)),+])
    };
}

/// Declares property tests (subset of proptest's macro of the same
/// name): runs each body `cases` times with fresh generated inputs.
#[macro_export]
macro_rules! proptest {
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $( let $arg = $crate::Strategy::new_value(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u8),
        B(u8),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![(0u8..10).prop_map(Op::A), (0u8..10).prop_map(Op::B)]
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 5u64..=9, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn signed_ranges_in_bounds(x in -5i32..5, y in -9i64..=-3) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((-9..=-3).contains(&y));
        }

        #[test]
        fn collections_sized(
            v in prop::collection::vec(any::<u8>(), 2..5),
            s in prop::collection::hash_set(0u64..100, 1..10),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(!s.is_empty() && s.len() < 10);
            prop_assert!(idx.index(v.len()) < v.len());
        }

        #[test]
        fn oneof_covers_both(ops in prop::collection::vec(op(), 1..50)) {
            for o in ops {
                match o {
                    Op::A(x) | Op::B(x) => prop_assert!(x < 10),
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_accepted(x in 0u8..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
