//! Offline shim of the subset of the `criterion` 0.5 API this
//! workspace's benches use.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a minimal wall-clock harness with the same call-site
//! syntax: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], [`criterion_group!`]
//! and [`criterion_main!`]. Instead of criterion's statistical engine
//! it warms each closure up briefly, then reports the median of a
//! fixed number of timed batches — adequate for the relative A/B
//! comparisons the ablation benches make, with none of the rigor of
//! real criterion. See DESIGN.md §Vendored shims.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives one benchmark's measured closure.
#[derive(Debug)]
pub struct Bencher {
    /// Median wall-clock time per iteration, filled in by `iter`.
    per_iter: Duration,
}

impl Bencher {
    /// Times `f`: short warm-up, then the median of several batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and size batches so one batch is ≥ ~1 ms.
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let mut samples: Vec<Duration> = Vec::with_capacity(Self::BATCHES);
        for _ in 0..Self::BATCHES {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(start.elapsed() / batch);
        }
        samples.sort_unstable();
        self.per_iter = samples[samples.len() / 2];
    }

    const BATCHES: usize = 7;
}

fn report(name: &str, per_iter: Duration, throughput: Option<Throughput>) {
    let mut line = format!("bench: {name:<48} {per_iter:>12.2?}/iter");
    if let Some(tp) = throughput {
        let secs = per_iter.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  ({:.2} Melem/s)", n as f64 / secs / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(
                    "  ({:.2} MiB/s)",
                    n as f64 / secs / (1 << 20) as f64
                ));
            }
        }
    }
    println!("{line}");
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            per_iter: Duration::ZERO,
        };
        f(&mut b);
        report(id, b.per_iter, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: group_name.to_owned(),
            throughput: None,
        }
    }

    /// Accepts (and ignores) harness CLI arguments, mirroring real
    /// criterion's builder method used by `criterion_main!`.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the shim
    /// always runs a fixed number of batches).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            per_iter: Duration::ZERO,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into()),
            b.per_iter,
            self.throughput,
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench-binary `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; a plain
            // `--test` invocation must not run the full benchmarks.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(4));
        g.bench_function(BenchmarkId::from_parameter(true), |b| b.iter(|| 2 * 2));
        g.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| 3 * 3));
        g.bench_function("plain", |b| b.iter(|| 4 * 4));
        g.finish();
    }
}
