//! Offline shim of the `stats_alloc` crate surface used by this
//! workspace: a [`GlobalAlloc`] wrapper that counts heap operations as
//! they pass through to the wrapped allocator.
//!
//! Mirrors the upstream names ([`StatsAlloc`], [`INSTRUMENTED_SYSTEM`],
//! [`Stats`]) for the subset the workspace needs. Two deliberate
//! differences from upstream, both in service of the allocation-ratchet
//! test (`tests/alloc_ratchet.rs` at the workspace root):
//!
//! * [`StatsAlloc::thread_allocations`] is a shim extension reporting a
//!   **per-thread** allocation count. The ratchet pins exact allocation
//!   numbers, and a process-global count (upstream's only mode) would
//!   absorb allocations from unrelated test-harness threads and turn
//!   the pin flaky. The per-thread counter is a `Cell` in const-initialised
//!   thread-local storage, so reading and bumping it never allocates
//!   (no lazy TLS initialisation inside the allocator).
//! * [`Stats`] carries the operation counts only, not the byte totals —
//!   nothing in the workspace reads bytes.
//!
//! Counting is wait-free: global totals are `Relaxed` atomics (they are
//! statistics, not synchronisation), and the per-thread count is plain
//! `Cell` arithmetic. During thread teardown, when TLS is already
//! destroyed, per-thread counting silently no-ops (`try_with`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    /// Heap allocations (`alloc`, `alloc_zeroed`, growth `realloc`)
    /// performed by the current thread since it started.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Process-global instrumented wrapper around [`System`], ready to be
/// installed with `#[global_allocator]`.
pub static INSTRUMENTED_SYSTEM: StatsAlloc<System> = StatsAlloc::new(System);

/// Cumulative heap-operation counts, as observed by [`StatsAlloc::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Calls to `alloc` / `alloc_zeroed`.
    pub allocations: u64,
    /// Calls to `dealloc`.
    pub deallocations: u64,
    /// Calls to `realloc`.
    pub reallocations: u64,
}

/// A counting [`GlobalAlloc`] wrapper: forwards every operation to the
/// inner allocator and tallies it, globally and per-thread.
pub struct StatsAlloc<T: GlobalAlloc> {
    inner: T,
    allocations: AtomicU64,
    deallocations: AtomicU64,
    reallocations: AtomicU64,
}

impl<T: GlobalAlloc> StatsAlloc<T> {
    /// Wraps `inner` with fresh counters.
    pub const fn new(inner: T) -> StatsAlloc<T> {
        StatsAlloc {
            inner,
            allocations: AtomicU64::new(0),
            deallocations: AtomicU64::new(0),
            reallocations: AtomicU64::new(0),
        }
    }

    /// Process-global operation counts since the wrapper was installed.
    pub fn stats(&self) -> Stats {
        Stats {
            allocations: self.allocations.load(Ordering::Relaxed),
            deallocations: self.deallocations.load(Ordering::Relaxed),
            reallocations: self.reallocations.load(Ordering::Relaxed),
        }
    }

    /// Shim extension: heap allocations (including `realloc` growth)
    /// performed by the **calling thread** since it started. Subtract
    /// two readings to count the allocations of a code region that runs
    /// entirely on one thread.
    pub fn thread_allocations(&self) -> u64 {
        THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0)
    }
}

unsafe impl<T: GlobalAlloc> GlobalAlloc for StatsAlloc<T> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        self.inner.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        self.inner.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.deallocations.fetch_add(1, Ordering::Relaxed);
        self.inner.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.reallocations.fetch_add(1, Ordering::Relaxed);
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        self.inner.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as #[global_allocator] here — these tests exercise
    // the wrapper directly so they stay meaningful regardless of what
    // the enclosing test binary installs.
    #[test]
    fn counts_alloc_and_dealloc() {
        let a = StatsAlloc::new(System);
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            let p2 = a.realloc(p, layout, 128);
            assert!(!p2.is_null());
            a.dealloc(p2, Layout::from_size_align(128, 8).unwrap());
        }
        let s = a.stats();
        assert_eq!((s.allocations, s.reallocations, s.deallocations), (1, 1, 1));
    }

    #[test]
    fn thread_counter_tracks_direct_calls() {
        let a = StatsAlloc::new(System);
        let before = a.thread_allocations();
        let layout = Layout::from_size_align(32, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            a.dealloc(p, layout);
        }
        assert_eq!(a.thread_allocations(), before + 1);
    }
}
