//! Offline shim of the subset of the `rand_distr` 0.4 API this
//! workspace uses: [`Distribution`] and the [`Zipf`] distribution.
//!
//! The Zipf sampler here is exact rather than approximate: it builds
//! the normalized cumulative mass function once in [`Zipf::new`] and
//! samples by binary search on a uniform draw (O(n) memory, O(log n)
//! per sample). The fabric trace uses n = 20 000, so the table is tiny.
//! See DESIGN.md §Vendored shims.

use rand::RngCore;

/// A distribution that can generate values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error cases for [`Zipf::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipfError {
    /// `n` was zero.
    NTooSmall,
    /// The exponent was negative or not finite.
    STooSmall,
}

impl core::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ZipfError::NTooSmall => write!(f, "n must be at least 1"),
            ZipfError::STooSmall => write!(f, "exponent must be finite and non-negative"),
        }
    }
}

impl std::error::Error for ZipfError {}

/// The Zipf (zeta, rank-frequency) distribution over `1..=n` with
/// exponent `s`: `P(k) ∝ k^-s`.
#[derive(Debug, Clone)]
pub struct Zipf<F> {
    cdf: Vec<F>,
}

impl Zipf<f64> {
    /// Builds a Zipf distribution over ranks `1..=n`.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError::NTooSmall);
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ZipfError::STooSmall);
        }
        let n = usize::try_from(n).map_err(|_| ZipfError::NTooSmall)?;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard the binary search against rounding at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let idx = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        (idx + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::{Distribution, Zipf, ZipfError};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(Zipf::new(0, 1.0).unwrap_err(), ZipfError::NTooSmall);
        assert_eq!(Zipf::new(10, f64::NAN).unwrap_err(), ZipfError::STooSmall);
        assert_eq!(Zipf::new(10, -0.5).unwrap_err(), ZipfError::STooSmall);
    }

    #[test]
    fn samples_in_range_and_skewed() {
        let zipf = Zipf::new(1000, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut ones = 0usize;
        for _ in 0..10_000 {
            let v = zipf.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&v));
            if v == 1.0 {
                ones += 1;
            }
        }
        // P(1) = 1/H_1000 ≈ 0.1336; allow wide slack.
        assert!(ones > 800, "rank 1 drawn only {ones}/10000 times");
    }

    #[test]
    fn uniform_when_exponent_zero() {
        let zipf = Zipf::new(4, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng) as usize - 1] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }
}
