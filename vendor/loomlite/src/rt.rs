//! The execution runtime: serialized logical threads, a replayable
//! decision tree explored depth-first with preemption bounding, and a
//! store-visibility model of the C11 atomics orderings.
//!
//! Every logical thread runs on its own OS thread, but exactly one is
//! ever unblocked: each synchronization operation first passes through a
//! *scheduling point* where the runtime decides (exploring all choices
//! across executions) which logical thread runs next. Because execution
//! is serialized, the shared program state needs no synchronization of
//! its own beyond the runtime's one mutex.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Atomic-object id → sequence number of the newest store to that object
/// the thread is aware of through happens-before. A load must read a
/// store at least that new ("visibility floor"); joining floor maps is
/// how release→acquire edges propagate visibility.
pub(crate) type FloorMap = BTreeMap<usize, u64>;

/// Panic payload used to unwind logical threads when an execution is
/// being torn down after a violation. Caught (and swallowed) by the
/// thread wrapper; never observable by model code.
pub(crate) struct AbortExecution;

/// A property violation found during exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// No logical thread is runnable but some are still blocked.
    Deadlock(String),
    /// An execution exceeded the per-execution step budget — a spin
    /// loop that never reaches a blocking wait, or genuine livelock.
    StepBudget(usize),
    /// A logical thread panicked and the panic was never observed by a
    /// `join` (or it was the root closure itself).
    Panic(String),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Deadlock(s) => write!(f, "deadlock: {s}"),
            Violation::StepBudget(n) => {
                write!(
                    f,
                    "step budget exceeded ({n} steps): livelock or unbounded spin"
                )
            }
            Violation::Panic(s) => write!(f, "thread panicked: {s}"),
        }
    }
}

/// One decision in the replayable schedule: which of `total` options was
/// taken. The DFS driver bumps `chosen` on the deepest non-exhausted
/// branch between executions.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Branch {
    pub chosen: usize,
    pub total: usize,
}

/// Scheduling status of a logical thread.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    BlockedJoin(usize),
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    status: Status,
    /// Visibility floors (see [`FloorMap`]).
    floors: FloorMap,
    name: Option<String>,
}

/// One store in an atomic object's modification order.
#[derive(Debug, Clone)]
pub(crate) struct StoreRec {
    pub val: u64,
    pub seq: u64,
    /// `Some(floors)` when the store carries release semantics: an
    /// acquire load reading it joins these floors.
    pub sync: Option<FloorMap>,
}

#[derive(Debug)]
struct AtomicState {
    stores: Vec<StoreRec>,
}

#[derive(Debug)]
struct MutexState {
    locked_by: Option<usize>,
    /// Floors published by the last unlock (lock = acquire them).
    sync: FloorMap,
    poisoned: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Mode {
    Running,
    Abort(Violation),
}

/// Exploration limits. `preemption_bound` is the CHESS-style cap on
/// *involuntary* context switches per execution (switches at blocking
/// points are free); within that bound exploration is exhaustive.
#[derive(Debug, Clone)]
pub(crate) struct Limits {
    pub preemption_bound: Option<u32>,
    pub max_steps: usize,
}

pub(crate) struct RtState {
    threads: Vec<ThreadState>,
    active: usize,
    atomics: Vec<AtomicState>,
    mutexes: Vec<MutexState>,
    condvars: usize,
    store_seq: u64,
    steps: usize,
    preemptions: u32,
    mode: Mode,
    replay: Vec<Branch>,
    cursor: usize,
    limits: Limits,
    live: usize,
    /// OS handles of spawned (non-root) logical threads, joined by the
    /// driver at execution end.
    os_handles: Vec<std::thread::JoinHandle<()>>,
    /// Panic messages not yet consumed by a `join`.
    unobserved_panics: Vec<String>,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime").finish_non_exhaustive()
    }
}

/// The per-execution runtime shared by all logical threads.
pub(crate) struct Runtime {
    st: Mutex<RtState>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Runtime>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with the current logical-thread context, panicking (with a
/// usable message) when called outside `model()`.
pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Runtime>, usize) -> R) -> R {
    CURRENT.with(|c| {
        let b = c.borrow();
        let (rt, tid) = b
            .as_ref()
            .expect("loomlite primitives may only be used inside loomlite::model()");
        f(rt, *tid)
    })
}

fn set_current(ctx: Option<(Arc<Runtime>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

impl Runtime {
    pub(crate) fn new(limits: Limits, replay: Vec<Branch>) -> Arc<Runtime> {
        Arc::new(Runtime {
            st: Mutex::new(RtState {
                threads: Vec::new(),
                active: 0,
                atomics: Vec::new(),
                mutexes: Vec::new(),
                condvars: 0,
                store_seq: 0,
                steps: 0,
                preemptions: 0,
                mode: Mode::Running,
                replay,
                cursor: 0,
                limits,
                live: 0,
                os_handles: Vec::new(),
                unobserved_panics: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, RtState> {
        // The runtime's own mutex can only be poisoned by a bug in
        // loomlite itself; continue so teardown still joins OS threads.
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Aborts the execution: records the violation, wakes every logical
    /// thread (they unwind via [`AbortExecution`]), and unwinds the
    /// caller too.
    fn fail(&self, st: &mut RtState, v: Violation) -> ! {
        if st.mode == Mode::Running {
            st.mode = Mode::Abort(v);
        }
        self.cv.notify_all();
        std::panic::panic_any(AbortExecution);
    }

    fn check_abort(&self, st: &RtState) {
        if st.mode != Mode::Running && !std::thread::panicking() {
            std::panic::panic_any(AbortExecution);
        }
    }

    /// Takes (or records) the next decision among `total` options.
    fn decide(&self, st: &mut RtState, total: usize) -> usize {
        if total <= 1 {
            return 0;
        }
        if st.cursor < st.replay.len() {
            let b = st.replay[st.cursor];
            assert_eq!(
                b.total, total,
                "loomlite internal error: execution diverged from its replayed schedule"
            );
            st.cursor += 1;
            b.chosen
        } else {
            st.replay.push(Branch { chosen: 0, total });
            st.cursor += 1;
            0
        }
    }

    /// Blocks the calling OS thread until its logical thread is active
    /// again (or the execution aborts).
    fn wait_my_turn<'a>(
        &'a self,
        mut st: MutexGuard<'a, RtState>,
        me: usize,
    ) -> MutexGuard<'a, RtState> {
        while st.active != me {
            if st.mode != Mode::Running {
                drop(st);
                std::panic::panic_any(AbortExecution);
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        self.check_abort(&st);
        st
    }

    fn runnable_except(st: &RtState, me: usize) -> Vec<usize> {
        (0..st.threads.len())
            .filter(|&t| t != me && st.threads[t].status == Status::Runnable)
            .collect()
    }

    /// The scheduling point executed before every synchronization
    /// operation: may transfer control to another runnable thread,
    /// exploring all such transfers (up to the preemption bound) across
    /// executions.
    pub(crate) fn schedule(self: &Arc<Self>, me: usize) {
        if std::thread::panicking() {
            // Operations performed while unwinding (guard drops, poison
            // flags) are applied without preemption: the unwinding
            // thread runs to completion of the operation.
            return;
        }
        let mut st = self.lock();
        self.check_abort(&st);
        st.steps += 1;
        if st.steps > st.limits.max_steps {
            let n = st.limits.max_steps;
            self.fail(&mut st, Violation::StepBudget(n));
        }
        let others = Self::runnable_except(&st, me);
        if others.is_empty() {
            return;
        }
        let can_preempt = st
            .limits
            .preemption_bound
            .is_none_or(|b| st.preemptions < b);
        if !can_preempt {
            return;
        }
        let idx = self.decide(&mut st, 1 + others.len());
        if idx > 0 {
            let next = others[idx - 1];
            st.preemptions += 1;
            st.active = next;
            self.cv.notify_all();
            let st = self.wait_my_turn(st, me);
            drop(st);
        }
    }

    /// Marks the calling logical thread blocked with `status`, hands
    /// control to another runnable thread (detecting deadlock when none
    /// exists), and returns once the thread is runnable *and* active
    /// again.
    fn block(self: &Arc<Self>, me: usize, status: Status) {
        let mut st = self.lock();
        self.check_abort(&st);
        st.threads[me].status = status;
        self.pick_other(&mut st, me);
        let st = self.wait_my_turn(st, me);
        // Whoever woke us set the status back to Runnable.
        debug_assert_eq!(st.threads[me].status, Status::Runnable);
        self.check_abort(&st);
    }

    /// Chooses the next thread to run when the current one cannot
    /// continue (blocked or finished). A switch here is free: it is not
    /// a preemption.
    fn pick_other(self: &Arc<Self>, st: &mut RtState, me: usize) {
        let runnable = Self::runnable_except(st, me);
        if runnable.is_empty() {
            if st.live == 0 || st.threads.iter().all(|t| t.status == Status::Finished) {
                // Execution over; the driver is woken by thread exit.
                return;
            }
            let summary = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != Status::Finished)
                .map(|(i, t)| {
                    format!(
                        "{}[{i}]: {:?}",
                        t.name.as_deref().unwrap_or("thread"),
                        t.status
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            self.fail(st, Violation::Deadlock(summary));
        }
        let idx = self.decide(st, runnable.len());
        st.active = runnable[idx];
        self.cv.notify_all();
    }

    // ---- thread management -------------------------------------------------

    /// Registers the root logical thread (tid 0). Called by the driver
    /// before the root OS thread starts.
    pub(crate) fn register_root(&self) {
        let mut st = self.lock();
        st.threads.push(ThreadState {
            status: Status::Runnable,
            floors: FloorMap::new(),
            name: Some("main".into()),
        });
        st.live = 1;
        st.active = 0;
    }

    /// Registers a spawned logical thread, inheriting the creator's
    /// visibility floors (spawn is a release→acquire edge), and returns
    /// its tid. The caller then starts the OS thread and hands its
    /// handle to [`Runtime::adopt_os_handle`].
    pub(crate) fn register_thread(self: &Arc<Self>, creator: usize, name: Option<String>) -> usize {
        self.schedule(creator);
        let mut st = self.lock();
        let floors = st.threads[creator].floors.clone();
        st.threads.push(ThreadState {
            status: Status::Runnable,
            floors,
            name,
        });
        st.live += 1;
        st.threads.len() - 1
    }

    pub(crate) fn adopt_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.lock().os_handles.push(h);
    }

    /// Body wrapper for every logical thread's OS thread: establishes
    /// the thread-local context, waits to be scheduled, runs `body`,
    /// and performs exit bookkeeping (waking joiners, recording
    /// panics, electing a successor).
    pub(crate) fn run_thread(self: &Arc<Self>, tid: usize, body: impl FnOnce()) {
        set_current(Some((Arc::clone(self), tid)));
        {
            let st = self.lock();
            let st = self.wait_my_turn(st, tid);
            drop(st);
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
        set_current(None);
        let mut st = self.lock();
        if let Err(p) = result {
            if !p.is::<AbortExecution>() {
                st.unobserved_panics.push(crate::panic_message(&*p));
            }
        }
        st.threads[tid].status = Status::Finished;
        st.live -= 1;
        // Joiners become runnable and acquire our floors when they
        // complete the join operation.
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::BlockedJoin(tid) {
                st.threads[t].status = Status::Runnable;
            }
        }
        if st.live > 0 && st.mode == Mode::Running {
            // Like fail()/pick_other but must not unwind: we are
            // already exiting.
            let runnable = Self::runnable_except(&st, tid);
            if runnable.is_empty() {
                let msg = "all remaining threads blocked after a thread exit".to_string();
                st.mode = Mode::Abort(Violation::Deadlock(msg));
            } else {
                let idx = self.decide(&mut st, runnable.len());
                st.active = runnable[idx];
            }
        }
        self.cv.notify_all();
    }

    /// Waits (on the driver thread) for every logical thread to finish,
    /// then joins the OS threads and reports the outcome plus the
    /// recorded decision path.
    pub(crate) fn finish(
        self: &Arc<Self>,
        root_handle: std::thread::JoinHandle<()>,
    ) -> (Vec<Branch>, Result<(), Violation>) {
        let mut st = self.lock();
        while st.live > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let handles = std::mem::take(&mut st.os_handles);
        drop(st);
        for h in handles {
            let _ = h.join();
        }
        let _ = root_handle.join();
        let st = self.lock();
        let outcome = match &st.mode {
            Mode::Abort(v) => Err(v.clone()),
            Mode::Running => match st.unobserved_panics.first() {
                Some(m) => Err(Violation::Panic(m.clone())),
                None => Ok(()),
            },
        };
        (st.replay.clone(), outcome)
    }

    /// `join` side of thread exit: blocks until `target` finishes, then
    /// acquires its floors. The caller consumes the panic result (if
    /// any) from its typed slot, so the panic counts as observed.
    pub(crate) fn join_thread(self: &Arc<Self>, me: usize, target: usize) {
        loop {
            self.schedule(me);
            let mut st = self.lock();
            self.check_abort(&st);
            if st.threads[target].status == Status::Finished {
                let floors = st.threads[target].floors.clone();
                join_floors(&mut st.threads[me].floors, &floors);
                return;
            }
            drop(st);
            self.block(me, Status::BlockedJoin(target));
        }
    }

    /// Records a panic message from a logical thread; unless observed
    /// by a `join`, it fails the execution.
    pub(crate) fn record_panic(&self, msg: String) {
        self.lock().unobserved_panics.push(msg);
    }

    /// Marks one recorded panic as observed by a join (its message is
    /// no longer grounds for failing the execution).
    pub(crate) fn observe_panic(&self, msg: &str) {
        let mut st = self.lock();
        if let Some(i) = st.unobserved_panics.iter().position(|m| m == msg) {
            st.unobserved_panics.remove(i);
        }
    }

    /// Voluntary yield / spin-loop hint. Unlike a plain scheduling
    /// point, a yield *forces* a switch to another runnable thread when
    /// one exists (loom's semantics): the yielding thread has declared
    /// it cannot progress, so re-scheduling it immediately would only
    /// generate unbounded self-spin schedules.
    pub(crate) fn yield_now(self: &Arc<Self>, me: usize) {
        if std::thread::panicking() {
            return;
        }
        let mut st = self.lock();
        self.check_abort(&st);
        st.steps += 1;
        if st.steps > st.limits.max_steps {
            let n = st.limits.max_steps;
            self.fail(&mut st, Violation::StepBudget(n));
        }
        let others = Self::runnable_except(&st, me);
        if others.is_empty() {
            return;
        }
        let idx = self.decide(&mut st, others.len());
        st.active = others[idx];
        self.cv.notify_all();
        let st = self.wait_my_turn(st, me);
        drop(st);
    }

    // ---- atomics -----------------------------------------------------------

    pub(crate) fn new_atomic(&self, init: u64) -> usize {
        let mut st = self.lock();
        st.store_seq += 1;
        let seq = st.store_seq;
        let id = st.atomics.len();
        st.atomics.push(AtomicState {
            stores: vec![StoreRec {
                val: init,
                seq,
                sync: None,
            }],
        });
        id
    }

    /// An atomic load: which store it reads is itself an explored
    /// decision for `Relaxed`/`Acquire` (any store at or above the
    /// thread's visibility floor); `SeqCst` loads read the newest store
    /// (the one total-order approximation loomlite makes — see the
    /// crate docs).
    pub(crate) fn atomic_load(self: &Arc<Self>, me: usize, id: usize, ord: Ordering) -> u64 {
        use std::sync::atomic::Ordering as O;
        if std::thread::panicking() {
            let st = self.lock();
            return st.atomics[id].stores.last().map_or(0, |s| s.val);
        }
        self.schedule(me);
        let mut st = self.lock();
        self.check_abort(&st);
        let floor = st.threads[me].floors.get(&id).copied().unwrap_or(0);
        let mut readable: Vec<StoreRec> = st.atomics[id]
            .stores
            .iter()
            .filter(|s| s.seq >= floor)
            .cloned()
            .collect();
        readable.sort_by_key(|s| std::cmp::Reverse(s.seq));
        let chosen = if matches!(ord, O::SeqCst) {
            readable[0].clone()
        } else {
            // Collapse stores with identical observable outcome so the
            // decision tree only branches on distinguishable reads.
            let mut distinct: Vec<StoreRec> = Vec::new();
            for s in readable {
                if !distinct.iter().any(|d| d.val == s.val && d.sync == s.sync) {
                    distinct.push(s);
                }
            }
            let idx = self.decide(&mut st, distinct.len());
            distinct[idx].clone()
        };
        let acquire = matches!(ord, O::Acquire | O::AcqRel | O::SeqCst);
        apply_read(&mut st.threads[me].floors, id, &chosen, acquire);
        chosen.val
    }

    pub(crate) fn atomic_store(self: &Arc<Self>, me: usize, id: usize, val: u64, ord: Ordering) {
        use std::sync::atomic::Ordering as O;
        if !std::thread::panicking() {
            self.schedule(me);
        }
        let mut st = self.lock();
        self.check_abort(&st);
        st.store_seq += 1;
        let seq = st.store_seq;
        st.threads[me].floors.insert(id, seq);
        let sync = matches!(ord, O::Release | O::AcqRel | O::SeqCst)
            .then(|| st.threads[me].floors.clone());
        st.atomics[id].stores.push(StoreRec { val, seq, sync });
    }

    /// A read-modify-write: always reads the newest store (C11: RMWs
    /// read the last value in modification order), writes `f(old)`.
    pub(crate) fn atomic_rmw(
        self: &Arc<Self>,
        me: usize,
        id: usize,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        use std::sync::atomic::Ordering as O;
        if !std::thread::panicking() {
            self.schedule(me);
        }
        let mut st = self.lock();
        self.check_abort(&st);
        let last = st.atomics[id]
            .stores
            .last()
            .cloned()
            .expect("atomic has an initial store");
        let acquire = matches!(ord, O::Acquire | O::AcqRel | O::SeqCst);
        apply_read(&mut st.threads[me].floors, id, &last, acquire);
        st.store_seq += 1;
        let seq = st.store_seq;
        st.threads[me].floors.insert(id, seq);
        let sync = matches!(ord, O::Release | O::AcqRel | O::SeqCst)
            .then(|| st.threads[me].floors.clone());
        st.atomics[id].stores.push(StoreRec {
            val: f(last.val),
            seq,
            sync,
        });
        last.val
    }

    // ---- mutexes -----------------------------------------------------------

    pub(crate) fn new_mutex(&self) -> usize {
        let mut st = self.lock();
        let id = st.mutexes.len();
        st.mutexes.push(MutexState {
            locked_by: None,
            sync: FloorMap::new(),
            poisoned: false,
        });
        id
    }

    /// Model-level lock acquisition; returns `true` if the mutex is
    /// poisoned (a thread panicked while holding it).
    pub(crate) fn mutex_lock(self: &Arc<Self>, me: usize, id: usize) -> bool {
        loop {
            self.schedule(me);
            let mut st = self.lock();
            self.check_abort(&st);
            if st.mutexes[id].locked_by.is_none() {
                st.mutexes[id].locked_by = Some(me);
                let sync = st.mutexes[id].sync.clone();
                join_floors(&mut st.threads[me].floors, &sync);
                return st.mutexes[id].poisoned;
            }
            drop(st);
            self.block(me, Status::BlockedMutex(id));
        }
    }

    /// Model-level unlock: publishes the holder's floors into the mutex
    /// (unlock is a release), poisons it when unlocking during a panic,
    /// and wakes lock waiters.
    pub(crate) fn mutex_unlock(self: &Arc<Self>, me: usize, id: usize) {
        if !std::thread::panicking() {
            self.schedule(me);
        }
        let mut st = self.lock();
        st.mutexes[id].locked_by = None;
        if std::thread::panicking() {
            st.mutexes[id].poisoned = true;
        }
        let floors = st.threads[me].floors.clone();
        st.mutexes[id].sync = floors;
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::BlockedMutex(id) {
                st.threads[t].status = Status::Runnable;
            }
        }
    }

    // ---- condvars ----------------------------------------------------------

    pub(crate) fn new_condvar(&self) -> usize {
        let mut st = self.lock();
        st.condvars += 1;
        st.condvars - 1
    }

    /// The blocking half of `Condvar::wait`, entered *after* the caller
    /// has dropped the inner guard: atomically releases the model mutex
    /// and blocks until notified. The caller re-locks afterwards.
    pub(crate) fn condvar_wait(self: &Arc<Self>, me: usize, cv: usize, mutex: usize) {
        {
            let mut st = self.lock();
            self.check_abort(&st);
            st.mutexes[mutex].locked_by = None;
            let floors = st.threads[me].floors.clone();
            st.mutexes[mutex].sync = floors;
            for t in 0..st.threads.len() {
                if st.threads[t].status == Status::BlockedMutex(mutex) {
                    st.threads[t].status = Status::Runnable;
                }
            }
        }
        self.block(me, Status::BlockedCondvar(cv));
    }

    /// Wakes every waiter of `cv`. Loomlite does not model spurious
    /// wakeups: absence of a wakeup is what the deadlock detector
    /// checks, and the modeled code may not *rely* on spurious wakeups
    /// anyway.
    pub(crate) fn condvar_notify_all(self: &Arc<Self>, me: usize, cv: usize) {
        if !std::thread::panicking() {
            self.schedule(me);
        }
        let mut st = self.lock();
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::BlockedCondvar(cv) {
                st.threads[t].status = Status::Runnable;
            }
        }
    }

    /// Wakes one waiter of `cv` — which one is an explored decision.
    pub(crate) fn condvar_notify_one(self: &Arc<Self>, me: usize, cv: usize) {
        if !std::thread::panicking() {
            self.schedule(me);
        }
        let mut st = self.lock();
        let waiters: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t].status == Status::BlockedCondvar(cv))
            .collect();
        if waiters.is_empty() {
            return;
        }
        let idx = self.decide(&mut st, waiters.len());
        st.threads[waiters[idx]].status = Status::Runnable;
    }
}

/// Coherence + acquire bookkeeping after reading `store` of atomic `id`.
fn apply_read(floors: &mut FloorMap, id: usize, store: &StoreRec, acquire: bool) {
    if acquire {
        if let Some(sync) = &store.sync {
            join_floors(floors, sync);
        }
    }
    let f = floors.entry(id).or_insert(0);
    if store.seq > *f {
        *f = store.seq;
    }
}

fn join_floors(into: &mut FloorMap, from: &FloorMap) {
    for (&k, &v) in from {
        let e = into.entry(k).or_insert(0);
        if v > *e {
            *e = v;
        }
    }
}

use std::sync::atomic::Ordering;
