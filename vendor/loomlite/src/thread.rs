//! Modeled `std::thread` subset: [`spawn`], [`Builder`],
//! [`JoinHandle`], [`yield_now`], [`available_parallelism`] and
//! [`panicking`].

use std::fmt;
use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex};

use crate::rt::{self, Runtime};

/// Result slot shared between a logical thread's body and its
/// [`JoinHandle`]. Plain `std` mutex: execution is serialized, so there
/// is never contention, and the slot must work even while the model
/// runtime is tearing an execution down.
type Slot<T> = Arc<Mutex<Option<Result<T, String>>>>;

/// A handle to join a modeled thread, mirroring
/// `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    tid: usize,
    rt: Arc<Runtime>,
    slot: Slot<T>,
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinHandle")
            .field("tid", &self.tid)
            .finish()
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result. A panic in
    /// the thread surfaces as `Err` (with the panic message as payload)
    /// and counts as *observed* — it no longer fails the execution.
    pub fn join(self) -> std::thread::Result<T> {
        let me = rt::with_current(|_, tid| tid);
        self.rt.join_thread(me, self.tid);
        let result = self
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("loomlite: thread result already taken");
        match result {
            Ok(v) => Ok(v),
            Err(msg) => {
                self.rt.observe_panic(&msg);
                Err(Box::new(msg))
            }
        }
    }
}

/// Spawns a modeled thread running `f`, like `std::thread::spawn`.
///
/// The closure runs on a real OS thread, but only when the model
/// scheduler makes it the single active logical thread.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("loomlite spawn cannot fail")
}

/// Modeled `std::thread::Builder` (the name is kept for diagnostics;
/// stack size is ignored).
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Creates a builder with no name set.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Names the thread (used in deadlock reports).
    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    /// Spawns the thread. Never actually fails; the `io::Result` mirrors
    /// the `std` signature.
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (rt, me) = rt::with_current(|rt, tid| (Arc::clone(rt), tid));
        let tid = rt.register_thread(me, self.name);
        let slot: Slot<T> = Arc::new(Mutex::new(None));
        let body_slot = Arc::clone(&slot);
        let body_rt = Arc::clone(&rt);
        let os = std::thread::Builder::new()
            .spawn(move || {
                let rt2 = Arc::clone(&body_rt);
                body_rt.run_thread(tid, move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    match result {
                        Ok(v) => {
                            *body_slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v));
                        }
                        Err(p) => {
                            if p.is::<rt::AbortExecution>() {
                                std::panic::resume_unwind(p);
                            }
                            let msg = crate::panic_message(&*p);
                            *body_slot.lock().unwrap_or_else(|e| e.into_inner()) =
                                Some(Err(msg.clone()));
                            rt2.record_panic(msg);
                        }
                    }
                });
            })
            .expect("loomlite: OS thread spawn failed");
        rt.adopt_os_handle(os);
        Ok(JoinHandle { tid, rt, slot })
    }
}

/// Forces a scheduling switch to another runnable thread when one
/// exists (loom's `yield_now` semantics).
pub fn yield_now() {
    rt::with_current(|rt, tid| rt.yield_now(tid));
}

/// Always reports a single hardware thread under the model: modeled
/// code should take its no-spin (blocking) paths, which is exactly what
/// bounded exploration can verify.
pub fn available_parallelism() -> std::io::Result<NonZeroUsize> {
    Ok(NonZeroUsize::new(1).expect("1 is non-zero"))
}

/// Whether the current OS thread is unwinding — `std`'s, re-exported so
/// facade users need no second import path.
pub fn panicking() -> bool {
    std::thread::panicking()
}
