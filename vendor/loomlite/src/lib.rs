//! # loomlite — a loom-style concurrency model checker, offline
//!
//! The build environment has no crates.io access, so this workspace
//! vendors a small deterministic model checker implementing the subset
//! of the [`loom`](https://docs.rs/loom) API its concurrency tests use:
//! [`model`], [`thread::spawn`], [`sync::Mutex`], [`sync::Condvar`] and
//! [`sync::atomic`]. Code written against `flowlut_core::sync` (the
//! std/loomlite facade) runs unchanged under the checker when built
//! with `--cfg flowlut_model`.
//!
//! ## What it explores
//!
//! Each logical thread runs on an OS thread, but the runtime keeps
//! exactly one unblocked at a time: before every synchronization
//! operation (atomic access, mutex lock/unlock, condvar wait/notify,
//! spawn/join/yield) the scheduler decides which thread runs next. All
//! such decisions form a replayable tree that [`model`] explores
//! depth-first — **exhaustively within a CHESS-style preemption bound**
//! (involuntary context switches per execution are capped, switches at
//! blocking points are free; see [`Builder::preemption_bound`]).
//!
//! Atomics carry a store-visibility model of the C11 orderings: a
//! `Relaxed`/`Acquire` load may read *any* store not yet overwritten in
//! the reader's happens-before view (each possibility is a branch of
//! the tree), release→acquire edges and mutex/spawn/join edges
//! propagate visibility, and read-modify-writes always read the newest
//! store. So an under-synchronized protocol — a `Relaxed` publish, a
//! store→load Dekker pattern without `SeqCst` — produces executions
//! with stale reads that assertions (or the deadlock detector) catch.
//!
//! ## What it reports
//!
//! A [`Violation`]: deadlock (every remaining thread blocked — this is
//! how lost wakeups surface), a panic in any thread not observed by a
//! `join`, or a step-budget overrun (livelock / unbounded spin).
//!
//! ## Approximations (vs. real loom)
//!
//! * `SeqCst` is modeled as acquire/release **plus reading the newest
//!   store** — strong enough to validate store→load (Dekker) protocols,
//!   but not a full C11 SC axiomatization.
//! * No spurious condvar wakeups are generated.
//! * Exploration is bounded by preemptions, not DPOR-reduced; keep
//!   modeled tests to a few threads and a few dozen operations.
//!
//! ```
//! use loomlite::sync::atomic::{AtomicU64, Ordering};
//! use loomlite::sync::Arc;
//!
//! loomlite::model(|| {
//!     let a = Arc::new(AtomicU64::new(0));
//!     let b = Arc::clone(&a);
//!     let t = loomlite::thread::spawn(move || b.fetch_add(1, Ordering::AcqRel));
//!     a.fetch_add(1, Ordering::AcqRel);
//!     t.join().unwrap();
//!     assert_eq!(a.load(Ordering::Acquire), 2);
//! });
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod rt;
pub mod sync;
pub mod thread;

pub use rt::Violation;

/// `std::hint` stand-ins.
pub mod hint {
    /// Spin-loop hint: under the model this is a forced yield to
    /// another runnable thread (see [`crate::thread::yield_now`]).
    pub fn spin_loop() {
        crate::thread::yield_now();
    }
}

use std::sync::Arc;

/// Renders a panic payload (`&str` or `String`) for reports and
/// assertions on caught panics.
pub fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Exploration configuration. The defaults explore exhaustively up to 3
/// preemptions per execution, which catches every bug class the
/// workspace's barrier tests assert (and is the bound the CI model
/// suite runs at).
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum involuntary context switches per execution; `None` means
    /// unbounded (full interleaving exploration — rarely tractable).
    pub preemption_bound: Option<u32>,
    /// Per-execution operation budget before declaring livelock.
    pub max_steps: usize,
    /// Total executions budget; exceeding it is a test error (raise the
    /// bound knowingly rather than silently truncating coverage).
    pub max_executions: usize,
}

impl Default for Builder {
    fn default() -> Builder {
        Builder {
            preemption_bound: Some(3),
            max_steps: 50_000,
            max_executions: 500_000,
        }
    }
}

impl Builder {
    /// A builder with the default bounds.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Sets the preemption bound (see [`Builder::preemption_bound`]).
    pub fn preemption_bound(mut self, bound: Option<u32>) -> Builder {
        self.preemption_bound = bound;
        self
    }

    /// Explores `f` under every schedule within the bounds, panicking
    /// with the violation (and the number of executions explored) on
    /// the first buggy schedule. Returns the number of executions when
    /// the property holds.
    pub fn check<F>(&self, f: F) -> usize
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.explore(f) {
            Ok(n) => n,
            Err((v, n)) => panic!("loomlite found a violation after {n} execution(s): {v}"),
        }
    }

    /// Like [`Builder::check`] but returns the violation instead of
    /// panicking — the hook the checker's own regression tests (seeded
    /// mutations that loomlite *must* catch) are built on.
    pub fn check_violation<F>(&self, f: F) -> Option<Violation>
    where
        F: Fn() + Send + Sync + 'static,
    {
        self.explore(f).err().map(|(v, _)| v)
    }

    fn explore<F>(&self, f: F) -> Result<usize, (Violation, usize)>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut path: Vec<rt::Branch> = Vec::new();
        let mut executions = 0usize;
        loop {
            executions += 1;
            assert!(
                executions <= self.max_executions,
                "loomlite execution budget ({}) exhausted — tighten the test \
                 or raise Builder::max_executions",
                self.max_executions
            );
            let limits = rt::Limits {
                preemption_bound: self.preemption_bound,
                max_steps: self.max_steps,
            };
            let runtime = rt::Runtime::new(limits, path.clone());
            runtime.register_root();
            let body = Arc::clone(&f);
            let root_rt = Arc::clone(&runtime);
            let root = std::thread::Builder::new()
                .name("loomlite-root".into())
                .spawn(move || {
                    let rt2 = Arc::clone(&root_rt);
                    root_rt.run_thread(0, move || {
                        let result =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body()));
                        if let Err(p) = result {
                            if p.is::<rt::AbortExecution>() {
                                std::panic::resume_unwind(p);
                            }
                            rt2.record_panic(panic_message(&*p));
                        }
                    });
                })
                .expect("loomlite: root OS thread spawn failed");
            let (recorded, outcome) = runtime.finish(root);
            if let Err(v) = outcome {
                return Err((v, executions));
            }
            // Depth-first advance: bump the deepest non-exhausted
            // decision, dropping everything recorded below it.
            path = recorded;
            loop {
                match path.last_mut() {
                    None => return Ok(executions),
                    Some(b) if b.chosen + 1 < b.total => {
                        b.chosen += 1;
                        break;
                    }
                    Some(_) => {
                        path.pop();
                    }
                }
            }
        }
    }
}

/// Explores `f` under the default [`Builder`] bounds, panicking on the
/// first schedule that deadlocks, panics, or livelocks.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f);
}
