//! Modeled `std::sync` subset: [`atomic`], [`Mutex`], [`Condvar`].
//!
//! `Arc` is re-exported from `std` unchanged: reference counting has no
//! interleaving-visible behavior worth modeling here.

pub use std::sync::{Arc, LockResult, PoisonError};

use std::fmt;

use crate::rt::{self, Runtime};

/// Modeled atomics. `Ordering` is `std`'s own enum, so call sites are
/// source-identical with `std::sync::atomic`.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::*;

    /// Shared state of one modeled atomic cell (all widths are modeled
    /// as `u64`).
    struct Cell {
        id: usize,
        rt: Arc<Runtime>,
    }

    impl Cell {
        fn new(init: u64) -> Cell {
            rt::with_current(|rt, _| Cell {
                id: rt.new_atomic(init),
                rt: Arc::clone(rt),
            })
        }

        fn load(&self, ord: Ordering) -> u64 {
            rt::with_current(|_, tid| self.rt.atomic_load(tid, self.id, ord))
        }

        fn store(&self, val: u64, ord: Ordering) {
            rt::with_current(|_, tid| self.rt.atomic_store(tid, self.id, val, ord));
        }

        fn rmw(&self, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
            rt::with_current(|_, tid| self.rt.atomic_rmw(tid, self.id, ord, f))
        }
    }

    macro_rules! int_atomic {
        ($name:ident, $ty:ty, $doc:literal) => {
            #[doc = $doc]
            pub struct $name(Cell);

            impl $name {
                /// Creates the atomic with an initial value. Must be
                /// called inside [`crate::model`].
                pub fn new(v: $ty) -> $name {
                    $name(Cell::new(v as u64))
                }

                /// Atomic load under the modeled memory order.
                pub fn load(&self, ord: Ordering) -> $ty {
                    self.0.load(ord) as $ty
                }

                /// Atomic store under the modeled memory order.
                pub fn store(&self, v: $ty, ord: Ordering) {
                    self.0.store(v as u64, ord)
                }

                /// Atomic add; returns the previous value.
                pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                    self.0.rmw(ord, |old| (old as $ty).wrapping_add(v) as u64) as $ty
                }

                /// Atomic subtract; returns the previous value.
                pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                    self.0.rmw(ord, |old| (old as $ty).wrapping_sub(v) as u64) as $ty
                }

                /// Atomic swap; returns the previous value.
                pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                    self.0.rmw(ord, |_| v as u64) as $ty
                }
            }

            impl fmt::Debug for $name {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    f.debug_tuple(stringify!($name)).finish_non_exhaustive()
                }
            }
        };
    }

    int_atomic!(AtomicU64, u64, "Modeled `std::sync::atomic::AtomicU64`.");
    int_atomic!(
        AtomicUsize,
        usize,
        "Modeled `std::sync::atomic::AtomicUsize`."
    );
    int_atomic!(AtomicU32, u32, "Modeled `std::sync::atomic::AtomicU32`.");

    /// Modeled `std::sync::atomic::AtomicBool`.
    pub struct AtomicBool(Cell);

    impl AtomicBool {
        /// Creates the atomic with an initial value. Must be called
        /// inside [`crate::model`].
        pub fn new(v: bool) -> AtomicBool {
            AtomicBool(Cell::new(v as u64))
        }

        /// Atomic load under the modeled memory order.
        pub fn load(&self, ord: Ordering) -> bool {
            self.0.load(ord) != 0
        }

        /// Atomic store under the modeled memory order.
        pub fn store(&self, v: bool, ord: Ordering) {
            self.0.store(v as u64, ord)
        }

        /// Atomic swap; returns the previous value.
        pub fn swap(&self, v: bool, ord: Ordering) -> bool {
            self.0.rmw(ord, |_| v as u64) != 0
        }
    }

    impl fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("AtomicBool").finish_non_exhaustive()
        }
    }
}

/// A modeled mutex. Data lives in an inner `std` mutex (which is never
/// contended — execution is serialized), while blocking, poisoning and
/// release→acquire visibility are modeled by the runtime.
pub struct Mutex<T> {
    id: usize,
    rt: Arc<Runtime>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex. Must be called inside [`crate::model`].
    pub fn new(t: T) -> Mutex<T> {
        rt::with_current(|rt, _| Mutex {
            id: rt.new_mutex(),
            rt: Arc::clone(rt),
            inner: std::sync::Mutex::new(t),
        })
    }

    /// Acquires the mutex, blocking the logical thread (the scheduler
    /// explores who runs meanwhile). Returns `Err` if a thread panicked
    /// while holding it, like `std`.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let me = rt::with_current(|_, tid| tid);
        let poisoned = self.rt.mutex_lock(me, self.id);
        // The inner mutex may carry std-level poison from a panicked
        // logical thread; the model-level `poisoned` flag is the source
        // of truth, so recover the guard either way.
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                unreachable!("loomlite: inner mutex contended despite model serialization")
            }
        };
        let guard = MutexGuard {
            inner: Some(inner),
            mutex: self,
        };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

/// Guard for a modeled [`Mutex`]; releasing it is a modeled release
/// operation.
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still armed")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard still armed")
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let me = rt::with_current(|_, tid| tid);
            // Inner guard first: the model unlock makes the data
            // reachable by other logical threads at the next scheduling
            // point, but they cannot run before this thread reaches one.
            drop(inner);
            self.mutex.rt.mutex_unlock(me, self.mutex.id);
        }
    }
}

/// A modeled condition variable. No spurious wakeups are modeled (code
/// must not *rely* on them, and their absence is the conservative
/// direction for lost-wakeup detection).
pub struct Condvar {
    id: usize,
    rt: Arc<Runtime>,
}

impl Condvar {
    /// Creates the condvar. Must be called inside [`crate::model`].
    pub fn new() -> Condvar {
        rt::with_current(|rt, _| Condvar {
            id: rt.new_condvar(),
            rt: Arc::clone(rt),
        })
    }

    /// Atomically releases the guard's mutex and blocks until notified,
    /// then reacquires the mutex.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let me = rt::with_current(|_, tid| tid);
        let mutex = guard.mutex;
        // Disarm the guard (its Drop becomes a no-op): the model-level
        // unlock happens atomically with registering as a waiter,
        // inside condvar_wait.
        drop(guard.inner.take().expect("guard still armed"));
        drop(guard);
        self.rt.condvar_wait(me, self.id, mutex.id);
        mutex.lock()
    }

    /// Wakes all current waiters.
    pub fn notify_all(&self) {
        let me = rt::with_current(|_, tid| tid);
        self.rt.condvar_notify_all(me, self.id);
    }

    /// Wakes one current waiter (which one is an explored decision).
    pub fn notify_one(&self) {
        let me = rt::with_current(|_, tid| tid);
        self.rt.condvar_notify_one(me, self.id);
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").field("id", &self.id).finish()
    }
}
