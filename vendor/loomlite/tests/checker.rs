//! Self-tests of the model checker: known-correct protocols must pass,
//! known-broken ones must be caught. These run under plain `cargo
//! test` (loomlite needs no cfg of its own — only the facade routing
//! does).

use loomlite::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use loomlite::sync::{Arc, Condvar, Mutex};
use loomlite::{thread, Builder, Violation};

fn bounded(bound: u32) -> Builder {
    Builder::new().preemption_bound(Some(bound))
}

// ---- basic scheduling ------------------------------------------------------

#[test]
fn sequential_closure_runs_once_per_schedule() {
    let n = loomlite::Builder::default().check(|| {
        let a = AtomicU64::new(1);
        assert_eq!(a.load(Ordering::SeqCst), 1);
    });
    assert_eq!(n, 1, "a single-threaded closure has exactly one schedule");
}

#[test]
fn spawn_join_passes_values_and_visibility() {
    loomlite::model(|| {
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::clone(&a);
        let t = thread::spawn(move || {
            b.store(7, Ordering::Relaxed);
            42u64
        });
        assert_eq!(t.join().unwrap(), 42);
        // join is an acquire edge: the relaxed store must be visible.
        assert_eq!(a.load(Ordering::Relaxed), 7);
    });
}

#[test]
fn racing_increments_never_lose_updates() {
    loomlite::model(|| {
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::clone(&a);
        let t = thread::spawn(move || {
            b.fetch_add(1, Ordering::Relaxed);
        });
        a.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        // RMWs read the newest store: both increments always land.
        assert_eq!(a.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn plain_store_race_can_lose_an_update() {
    // The dual of the RMW test: two racing `store(load+1)` sequences DO
    // lose an update under some schedule — the checker must find it.
    let v = bounded(2).check_violation(|| {
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::clone(&a);
        let t = thread::spawn(move || {
            let x = b.load(Ordering::SeqCst);
            b.store(x + 1, Ordering::SeqCst);
        });
        let x = a.load(Ordering::SeqCst);
        a.store(x + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
    });
    assert!(
        matches!(v, Some(Violation::Panic(ref m)) if m.contains("lost update")),
        "expected the lost-update assert to fire, got {v:?}"
    );
}

// ---- memory-ordering discrimination ---------------------------------------

/// Message passing: data published with `Release`, flag read with
/// `Acquire` — correct, must pass.
#[test]
fn release_acquire_message_passing_is_correct() {
    bounded(3).check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(99, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 99, "stale data");
        }
        t.join().unwrap();
    });
}

/// The same protocol with a `Relaxed` flag is broken: the reader can
/// see the flag without the data. The checker must find the stale read.
#[test]
fn relaxed_message_passing_is_caught() {
    let v = bounded(3).check_violation(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(99, Ordering::Relaxed);
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) {
            assert_eq!(data.load(Ordering::Relaxed), 99, "stale data");
        }
        t.join().unwrap();
    });
    assert!(
        matches!(v, Some(Violation::Panic(ref m)) if m.contains("stale data")),
        "expected a stale read, got {v:?}"
    );
}

/// Dekker store→load: with SeqCst on both sides, at least one thread
/// must see the other's store — correct, must pass.
#[test]
fn seqcst_dekker_is_correct() {
    bounded(3).check(|| {
        let x = Arc::new(AtomicBool::new(false));
        let y = Arc::new(AtomicBool::new(false));
        let saw_x = Arc::new(AtomicBool::new(false));
        let (x2, y2, s2) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&saw_x));
        let t = thread::spawn(move || {
            y2.store(true, Ordering::SeqCst);
            s2.store(x2.load(Ordering::SeqCst), Ordering::SeqCst);
        });
        x.store(true, Ordering::SeqCst);
        let saw_y = y.load(Ordering::SeqCst);
        t.join().unwrap();
        assert!(
            saw_y || saw_x.load(Ordering::SeqCst),
            "both Dekker sides read stale"
        );
    });
}

/// The same pattern downgraded to Release stores + Acquire loads allows
/// both threads to read stale (store→load reordering) — must be caught.
#[test]
fn release_acquire_dekker_is_caught() {
    let v = bounded(3).check_violation(|| {
        let x = Arc::new(AtomicBool::new(false));
        let y = Arc::new(AtomicBool::new(false));
        let saw_x = Arc::new(AtomicBool::new(false));
        let (x2, y2, s2) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&saw_x));
        let t = thread::spawn(move || {
            y2.store(true, Ordering::Release);
            s2.store(x2.load(Ordering::Acquire), Ordering::SeqCst);
        });
        x.store(true, Ordering::Release);
        let saw_y = y.load(Ordering::Acquire);
        t.join().unwrap();
        assert!(
            saw_y || saw_x.load(Ordering::SeqCst),
            "both Dekker sides read stale"
        );
    });
    assert!(
        matches!(v, Some(Violation::Panic(ref m)) if m.contains("both Dekker sides")),
        "expected the Dekker assert to fire, got {v:?}"
    );
}

// ---- mutex + condvar -------------------------------------------------------

#[test]
fn mutex_serializes_critical_sections() {
    loomlite::model(|| {
        let m = Arc::new(Mutex::new(0u64));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || {
            let mut g = m2.lock().expect("not poisoned");
            *g += 1;
        });
        {
            let mut g = m.lock().expect("not poisoned");
            *g += 1;
        }
        t.join().unwrap();
        assert_eq!(*m.lock().expect("not poisoned"), 2);
    });
}

#[test]
fn mutex_poisoning_propagates() {
    loomlite::model(|| {
        let m = Arc::new(Mutex::new(0u64));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || {
            let _g = m2.lock().expect("not poisoned");
            panic!("die holding the lock");
        });
        assert!(t.join().is_err(), "the thread must report its panic");
        assert!(
            m.lock().is_err(),
            "a panic while holding the lock must poison it"
        );
    });
}

/// The classic correct park/wake protocol: flag under the mutex,
/// re-checked in a wait loop — must pass (no deadlock in any schedule).
#[test]
fn condvar_flag_protocol_is_correct() {
    bounded(3).check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock().expect("not poisoned");
            *g = true;
            cv.notify_all();
            drop(g);
        });
        let (m, cv) = &*pair;
        let mut g = m.lock().expect("not poisoned");
        while !*g {
            g = cv.wait(g).expect("not poisoned");
        }
        drop(g);
        t.join().unwrap();
    });
}

/// A lost wakeup: the waiter checks the flag *before* taking the mutex,
/// so the notify can land between check and wait. The deadlock detector
/// must catch the schedule where the waiter parks forever.
#[test]
fn lost_wakeup_is_caught_as_deadlock() {
    let v = bounded(3).check_violation(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let (f2, p2) = (Arc::clone(&flag), Arc::clone(&pair));
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            f2.store(true, Ordering::SeqCst);
            let _g = m.lock().expect("not poisoned");
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        if !flag.load(Ordering::SeqCst) {
            // BUG: flag may flip here, before we are on the condvar.
            let g = m.lock().expect("not poisoned");
            let _g = cv.wait(g).expect("not poisoned");
        }
        t.join().unwrap();
    });
    assert!(
        matches!(v, Some(Violation::Deadlock(_))),
        "expected a deadlock (lost wakeup), got {v:?}"
    );
}

// ---- exhaustion sanity -----------------------------------------------------

#[test]
fn exploration_visits_multiple_schedules() {
    let n = bounded(2).check(|| {
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::clone(&a);
        let t = thread::spawn(move || {
            b.fetch_add(1, Ordering::SeqCst);
        });
        a.fetch_add(2, Ordering::SeqCst);
        t.join().unwrap();
    });
    assert!(
        n > 1,
        "two racing threads must yield several schedules, got {n}"
    );
}
