//! Offline shim of the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation of exactly the
//! surface the crates consume: [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::gen`], [`Rng::gen_range`] and [`seq::SliceRandom::shuffle`].
//! The generator is xoshiro256** seeded through SplitMix64 — not the
//! real `StdRng` (ChaCha12), but statistically strong and fully
//! deterministic for a given seed, which is all the simulations and
//! tests rely on. See DESIGN.md §Vendored shims.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of a `u64` draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`], backing
/// [`Rng::gen`] (the `Standard` distribution in real `rand`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, usize, i8, i16, i32);

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty, matching real `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw in `[0, span)` via Lemire-style rejection.
pub(crate) fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let v = u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64());
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a value drawn from the standard (uniform) distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns a value drawn uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (also used to seed xoshiro).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Slice shuffling and random selection.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u128 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = uniform_below(rng, self.len() as u128) as usize;
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.gen_range(0..=u32::MAX);
            let _ = w;
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
