//! One builder for every flow backend in the workspace.
//!
//! [`Builder`] assembles any backend — the functional Hash-CAM table,
//! the cycle-stepped single-channel prototype, the sharded multi-channel
//! engine, or any related-work baseline — behind `Box<dyn FlowBackend>`,
//! so sweeps, benches and examples construct their whole comparison set
//! through one fluent API:
//!
//! ```
//! use flowlut::{BaselineKind, Builder};
//! use flowlut::core::TableConfig;
//! use flowlut::ddr3::TimingPreset;
//!
//! // The paper's functional table.
//! let table = Builder::new().table(TableConfig::test_small()).build()?;
//! assert_eq!(table.capacity(), TableConfig::test_small().capacity());
//!
//! // A 4-channel timed engine on Figure 3's DDR3-1066E part.
//! let engine = Builder::new()
//!     .shards(4)
//!     .timing(TimingPreset::Ddr3_1066E)
//!     .table(TableConfig::test_small())
//!     .build()?;
//! assert_eq!(engine.capacity(), 4 * TableConfig::test_small().capacity());
//!
//! // A related-work comparator at matched capacity.
//! let cuckoo = Builder::new()
//!     .table(TableConfig::test_small())
//!     .baseline(BaselineKind::Cuckoo)
//!     .build()?;
//! assert_eq!(cuckoo.name(), "cuckoo");
//! # Ok::<(), flowlut::core::ConfigError>(())
//! ```

use flowlut_baselines::{
    BloomCamTable, CuckooTable, DLeftTable, OneMoveTable, SimultaneousHashCam, SingleHashTable,
};
use flowlut_core::backend::FlowBackend;
use flowlut_core::{ConfigError, FlowLutSim, HashCamTable, SimConfig, TableConfig};
use flowlut_ddr3::{MemoryKind, MemorySpec, TimingPreset};
use flowlut_engine::{EngineConfig, ExecutionMode, ShardedFlowLut};
use flowlut_scenarios::{Scenario, ScenarioReport, ScenarioRunner};
use flowlut_service::{FlowService, ServiceConfig};

/// The related-work comparators [`Builder::baseline`] can construct,
/// sized to match the configured [`TableConfig`]'s capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// One hash function, K-entry buckets.
    SingleHash,
    /// Multi-choice / balanced-allocations hashing (d = 2).
    DLeft,
    /// Two-function cuckoo hashing with kick-out insertion.
    Cuckoo,
    /// Kirsch & Mitzenmacher's single-move table with overflow CAM.
    OneMove,
    /// Bloom-filter occupancy summary plus CAM.
    BloomCam,
    /// The conventional Hash-CAM that probes CAM and both memories at
    /// once (the paper's early-exit ablation baseline).
    SimultaneousHashCam,
}

impl BaselineKind {
    /// Every baseline kind, in the related-work section's order — the
    /// iteration set for comparison registries.
    pub const ALL: [BaselineKind; 6] = [
        BaselineKind::SingleHash,
        BaselineKind::DLeft,
        BaselineKind::Cuckoo,
        BaselineKind::OneMove,
        BaselineKind::BloomCam,
        BaselineKind::SimultaneousHashCam,
    ];
}

/// Fluent constructor of any [`FlowBackend`].
///
/// Backend selection, in precedence order:
///
/// 1. [`baseline`](Self::baseline) → that related-work structure, sized
///    to match the configured table's capacity (untimed);
/// 2. [`shards`](Self::shards)` >= 2` → the sharded multi-channel engine;
/// 3. [`shards(1)`](Self::shards), [`timing`](Self::timing) or
///    [`sim_config`](Self::sim_config) → the cycle-stepped single-channel
///    prototype;
/// 4. otherwise → the functional [`HashCamTable`].
///
/// Defaults are the FPGA prototype's (8 M-entry table, DDR3-1600,
/// 100 MHz offered load per channel).
#[derive(Debug, Clone, Default)]
pub struct Builder {
    table: Option<TableConfig>,
    sim: Option<SimConfig>,
    timing: Option<TimingPreset>,
    memory: Option<MemorySpec>,
    shards: Option<usize>,
    threads: Option<usize>,
    input_rate_mhz: Option<f64>,
    seed: Option<u64>,
    baseline: Option<BaselineKind>,
}

impl Builder {
    /// Starts from the prototype defaults.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Table sizing and hashing (also sizes baselines, capacity-matched).
    pub fn table(mut self, table: TableConfig) -> Self {
        self.table = Some(table);
        self
    }

    /// Full simulator configuration for the timed backends (queue
    /// depths, policies, geometry). Implies a timed backend. `table`,
    /// `timing`, `input_rate_mhz` and `seed` still override its fields.
    pub fn sim_config(mut self, sim: SimConfig) -> Self {
        self.sim = Some(sim);
        self
    }

    /// DDR3 speed grade of each memory set. Implies a timed backend.
    /// For other memory technologies use [`memory`](Self::memory);
    /// combining this with a non-DDR3 memory is rejected at
    /// [`build`](Self::build) time.
    pub fn timing(mut self, preset: TimingPreset) -> Self {
        self.timing = Some(preset);
        self
    }

    /// Memory technology of each lookup path, at that technology's
    /// calibrated default parameters (DESIGN.md §Calibration). Implies
    /// a timed backend. `MemoryKind::Ddr3` is the legacy path —
    /// identical to not calling this at all.
    ///
    /// ```
    /// use flowlut::Builder;
    /// use flowlut::core::SimConfig;
    /// use flowlut::ddr3::MemoryKind;
    ///
    /// let hbm = Builder::new()
    ///     .sim_config(SimConfig::test_small())
    ///     .memory(MemoryKind::Hbm2)
    ///     .build()?;
    /// assert_eq!(hbm.name(), "hashcam-sim");
    /// # Ok::<(), flowlut::core::ConfigError>(())
    /// ```
    pub fn memory(self, kind: MemoryKind) -> Self {
        self.memory_spec(kind.default_spec())
    }

    /// Memory technology with explicit parameters, for sweeps that
    /// vary timing/geometry beyond the calibrated defaults.
    pub fn memory_spec(mut self, spec: MemorySpec) -> Self {
        self.memory = Some(spec);
        self
    }

    /// Number of lockstep channels. `1` selects the single-channel
    /// prototype; `>= 2` the sharded engine.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Number of host executor threads stepping the engine's shards
    /// each cycle (the calling thread plus `n − 1` workers). `1` is
    /// inline execution; `n >= 2` selects
    /// [`ExecutionMode::Threaded`](flowlut_engine::ExecutionMode) —
    /// bit-identical reports, real host-CPU parallelism. Only
    /// meaningful with [`shards`](Self::shards)` >= 2`; rejected for
    /// every other backend.
    ///
    /// ```
    /// use flowlut::Builder;
    /// use flowlut::core::SimConfig;
    ///
    /// let mut engine = Builder::new()
    ///     .sim_config(SimConfig::test_small())
    ///     .shards(4)
    ///     .threads(2)
    ///     .build()?;
    /// assert_eq!(engine.name(), "hashcam-sharded");
    /// # Ok::<(), flowlut::core::ConfigError>(())
    /// ```
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Offered descriptor rate in MHz — per channel for the single
    /// prototype, aggregate for the sharded engine. Defaults to the
    /// paper's 100 MHz per channel.
    pub fn input_rate_mhz(mut self, mhz: f64) -> Self {
        self.input_rate_mhz = Some(mhz);
        self
    }

    /// Seed for table hashing (and the engine's shard router).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Selects a related-work comparator instead of the paper's scheme.
    pub fn baseline(mut self, kind: BaselineKind) -> Self {
        self.baseline = Some(kind);
        self
    }

    /// The effective table configuration.
    fn table_config(&self) -> TableConfig {
        let mut t = self
            .table
            .or(self.sim.as_ref().map(|s| s.table))
            .unwrap_or_default();
        if let Some(seed) = self.seed {
            t.hash_seed = seed;
        }
        t
    }

    /// The effective per-channel simulator configuration.
    fn effective_sim_config(&self) -> SimConfig {
        let mut cfg = self.sim.clone().unwrap_or_default();
        cfg.table = self.table_config();
        if let Some(preset) = self.timing {
            cfg.timing = preset.params();
        }
        if let Some(spec) = self.memory {
            cfg.memory = spec;
        }
        if let Some(rate) = self.input_rate_mhz {
            cfg.input_rate_mhz = rate;
        }
        cfg
    }

    /// Rejects the one ambiguous combination: a DDR3 `TimingPreset`
    /// next to a memory technology that would ignore it.
    fn check_timing_memory_conflict(&self) -> Result<(), ConfigError> {
        if let (Some(_), Some(spec)) = (self.timing, self.memory) {
            if spec.kind() != MemoryKind::Ddr3 {
                return Err(ConfigError::new(format!(
                    "timing presets are DDR3-specific and would be ignored by the \
                     `{}` memory model: drop .timing(...) or select MemoryKind::Ddr3",
                    spec.name()
                )));
            }
        }
        Ok(())
    }

    /// Builds the selected backend behind `Box<dyn FlowBackend>`.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the assembled configuration is invalid, or if
    /// a baseline was combined with timed options (baselines are
    /// functional structures without a clock).
    pub fn build(self) -> Result<Box<dyn FlowBackend>, ConfigError> {
        if let Some(kind) = self.baseline {
            if self.shards.is_some()
                || self.timing.is_some()
                || self.memory.is_some()
                || self.sim.is_some()
                || self.input_rate_mhz.is_some()
                || self.threads.is_some()
            {
                return Err(ConfigError::new(
                    "baselines are untimed: they take no \
                     shards/timing/memory/sim_config/input_rate_mhz/threads",
                ));
            }
            return Ok(self.build_baseline(kind));
        }
        if self.threads == Some(0) {
            return Err(ConfigError::new("threads must be non-zero"));
        }
        match self.shards {
            Some(0) => Err(ConfigError::new("shards must be non-zero")),
            Some(n) if n >= 2 => Ok(Box::new(self.build_engine()?)),
            _ if self.threads.is_some() => Err(ConfigError::new(
                "threads require the sharded engine (shards >= 2): single-channel \
                 backends have nothing to parallelise",
            )),
            Some(_) => Ok(Box::new(self.build_sim()?)),
            None if self.timing.is_some() || self.memory.is_some() || self.sim.is_some() => {
                Ok(Box::new(self.build_sim()?))
            }
            None => Ok(Box::new(self.build_table()?)),
        }
    }

    /// Builds the functional [`HashCamTable`] (typed escape hatch).
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the table configuration is invalid.
    pub fn build_table(self) -> Result<HashCamTable, ConfigError> {
        let cfg = self.table_config();
        cfg.validate()?;
        Ok(HashCamTable::new(cfg))
    }

    /// Builds the single-channel timed prototype (typed escape hatch for
    /// callers that need the rich `SimReport`).
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the simulator configuration is invalid.
    pub fn build_sim(self) -> Result<FlowLutSim, ConfigError> {
        self.check_timing_memory_conflict()?;
        let cfg = self.effective_sim_config();
        cfg.validate()?;
        Ok(FlowLutSim::new(cfg))
    }

    /// Builds the sharded multi-channel engine (typed escape hatch for
    /// callers that need the per-shard `EngineReport`). Uses
    /// [`shards`](Self::shards) (default 2).
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the engine configuration is invalid.
    pub fn build_engine(self) -> Result<ShardedFlowLut, ConfigError> {
        Ok(ShardedFlowLut::new(self.engine_config()?))
    }

    /// Builds the long-running flow service (`flowlut-service`): the
    /// sharded engine of [`build_engine`](Self::build_engine) behind a
    /// bounded multi-producer ingest queue with a caller-driven pump —
    /// the entry point for ingest/age/checkpoint/rescale deployments
    /// (see `examples/flow_service.rs`).
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the engine configuration is invalid.
    pub fn build_service(self) -> Result<FlowService, ConfigError> {
        FlowService::new(ServiceConfig::new(self.engine_config()?))
    }

    /// The validated engine configuration shared by
    /// [`build_engine`](Self::build_engine) and
    /// [`build_service`](Self::build_service).
    fn engine_config(&self) -> Result<EngineConfig, ConfigError> {
        if self.threads == Some(0) {
            return Err(ConfigError::new("threads must be non-zero"));
        }
        self.check_timing_memory_conflict()?;
        let shards = self.shards.unwrap_or(2);
        let shard = self.effective_sim_config();
        let mut cfg = EngineConfig::prototype(shards);
        // Aggregate rate: explicit, else the per-channel configured rate
        // scaled by the channel count.
        cfg.input_rate_mhz = self
            .input_rate_mhz
            .unwrap_or(shards as f64 * shard.input_rate_mhz);
        if let Some(seed) = self.seed {
            cfg.router_seed = seed;
        }
        cfg.execution = match self.threads {
            Some(n) if n >= 2 => ExecutionMode::Threaded(n),
            _ => ExecutionMode::Inline,
        };
        cfg.shard = shard;
        cfg.validate()?;
        Ok(cfg)
    }

    /// Builds the selected backend and runs a declarative workload
    /// [`Scenario`] against it, returning the run's [`ScenarioReport`].
    /// One-stop entry point for the scenario matrix: any spec (builder
    /// or TOML, see `flowlut_scenarios::toml`) against any backend this
    /// builder can construct.
    ///
    /// ```
    /// use flowlut::Builder;
    /// use flowlut::core::TableConfig;
    /// use flowlut::scenarios::Scenario;
    ///
    /// let scenario = Scenario::new("zipf-skew", 42).zipf(500, 0.98, 2_000);
    /// let report = Builder::new()
    ///     .table(TableConfig::test_small())
    ///     .scenario(&scenario)?;
    /// assert_eq!(report.offered, 2_000);
    /// assert_eq!(report.drop_rate(), 0.0);
    /// # Ok::<(), flowlut::core::ConfigError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the assembled backend configuration is invalid
    /// (the same conditions as [`build`](Self::build)).
    pub fn scenario(self, scenario: &Scenario) -> Result<ScenarioReport, ConfigError> {
        let mut backend = self.build()?;
        Ok(ScenarioRunner::new().run(scenario, backend.as_mut()))
    }

    /// Constructs `kind` at the configured table's capacity: the same
    /// total key slots (two memories × buckets × K plus CAM),
    /// redistributed into each structure's natural shape. CAM-less
    /// structures round *up* to the next whole bucket, so every baseline
    /// holds at least as many keys as the paper's table.
    fn build_baseline(self, kind: BaselineKind) -> Box<dyn FlowBackend> {
        let t = self.table_config();
        let buckets = t.buckets_per_mem;
        let k = usize::from(t.entries_per_bucket);
        let cam = t.cam_capacity;
        let total = t.capacity() as usize;
        let seed = t.hash_seed;
        match kind {
            BaselineKind::SingleHash => {
                Box::new(SingleHashTable::new(total.div_ceil(k) as u32, k, seed))
            }
            BaselineKind::DLeft => {
                Box::new(DLeftTable::new(2, total.div_ceil(2 * k) as u32, k, seed))
            }
            BaselineKind::Cuckoo => {
                // Two single-entry sub-tables plus the structure's fixed
                // 8-slot stash.
                let per_table = total.saturating_sub(8).div_ceil(2).max(1) as u32;
                Box::new(CuckooTable::new(per_table, 1, 500, seed))
            }
            BaselineKind::OneMove => Box::new(OneMoveTable::new(2, buckets, k, cam, seed)),
            BaselineKind::BloomCam => Box::new(BloomCamTable::new((total - cam) as u32, cam, seed)),
            BaselineKind::SimultaneousHashCam => {
                Box::new(SimultaneousHashCam::new(buckets, k, cam, seed))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_backend_kind() {
        let small = TableConfig::test_small();
        let table = Builder::new().table(small).build().unwrap();
        assert_eq!(table.name(), "hashcam (this paper)");
        assert_eq!(table.capacity(), small.capacity());

        let sim = Builder::new()
            .sim_config(SimConfig::test_small())
            .build()
            .unwrap();
        assert_eq!(sim.name(), "hashcam-sim");

        let engine = Builder::new()
            .sim_config(SimConfig::test_small())
            .shards(2)
            .build()
            .unwrap();
        assert_eq!(engine.name(), "hashcam-sharded");
        assert_eq!(engine.capacity(), 2 * small.capacity());
    }

    #[test]
    fn baselines_are_capacity_matched() {
        let small = TableConfig::test_small();
        let total = small.capacity();
        let slack = 2 * u64::from(small.entries_per_bucket);
        for kind in BaselineKind::ALL {
            let b = Builder::new().table(small).baseline(kind).build().unwrap();
            assert!(
                b.capacity() >= total && b.capacity() <= total + slack,
                "{kind:?} ({}): capacity {} not within [{total}, {}]",
                b.name(),
                b.capacity(),
                total + slack
            );
        }
    }

    #[test]
    fn timed_options_reject_baselines() {
        assert!(Builder::new()
            .baseline(BaselineKind::Cuckoo)
            .shards(4)
            .build()
            .is_err());
        assert!(Builder::new()
            .baseline(BaselineKind::Cuckoo)
            .input_rate_mhz(200.0)
            .build()
            .is_err());
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(Builder::new().shards(0).build().is_err());
    }

    #[test]
    fn threads_select_threaded_engine_execution() {
        let engine = Builder::new()
            .sim_config(SimConfig::test_small())
            .shards(2)
            .threads(2)
            .build_engine()
            .unwrap();
        assert_eq!(
            engine.config().execution,
            flowlut_engine::ExecutionMode::Threaded(2)
        );
        assert_eq!(engine.executor_count(), 2);
        let inline = Builder::new()
            .sim_config(SimConfig::test_small())
            .shards(2)
            .threads(1)
            .build_engine()
            .unwrap();
        assert_eq!(inline.executor_count(), 1);
    }

    #[test]
    fn threads_rejected_off_the_engine_path() {
        assert!(Builder::new()
            .sim_config(SimConfig::test_small())
            .threads(2)
            .build()
            .is_err());
        assert!(Builder::new()
            .table(TableConfig::test_small())
            .threads(4)
            .build()
            .is_err());
        // threads(1) is rejected off the engine path too, matching the
        // documented contract (no silent drops).
        assert!(Builder::new()
            .table(TableConfig::test_small())
            .threads(1)
            .build()
            .is_err());
        assert!(Builder::new().shards(1).threads(1).build().is_err());
        assert!(Builder::new()
            .baseline(BaselineKind::Cuckoo)
            .threads(2)
            .build()
            .is_err());
        assert!(Builder::new().shards(4).threads(0).build().is_err());
        assert!(Builder::new().shards(4).threads(0).build_engine().is_err());
    }

    #[test]
    fn build_service_wraps_the_engine() {
        let svc = Builder::new()
            .sim_config(SimConfig::test_small())
            .shards(2)
            .build_service()
            .unwrap();
        assert_eq!(svc.engine().config().shards, 2);
        assert!(Builder::new().shards(0).build_service().is_err());
    }

    #[test]
    fn memory_kind_selects_the_model() {
        for kind in MemoryKind::ALL {
            let sim = Builder::new()
                .sim_config(SimConfig::test_small())
                .memory(kind)
                .build_sim()
                .unwrap();
            assert_eq!(sim.config().memory.kind(), kind);
        }
        // memory() alone implies a timed backend.
        let timed = Builder::new()
            .table(TableConfig::test_small())
            .memory(MemoryKind::Sram)
            .build()
            .unwrap();
        assert_eq!(timed.name(), "hashcam-sim");
    }

    #[test]
    fn memory_threads_through_the_engine() {
        let engine = Builder::new()
            .sim_config(SimConfig::test_small())
            .memory(MemoryKind::Hbm2)
            .shards(2)
            .build_engine()
            .unwrap();
        assert_eq!(engine.config().shard.memory.kind(), MemoryKind::Hbm2);
    }

    #[test]
    fn timing_preset_conflicts_with_non_ddr3_memory() {
        assert!(Builder::new()
            .sim_config(SimConfig::test_small())
            .timing(TimingPreset::Ddr3_1066E)
            .memory(MemoryKind::Hbm2)
            .build()
            .is_err());
        assert!(Builder::new()
            .sim_config(SimConfig::test_small())
            .timing(TimingPreset::Ddr3_1066E)
            .memory(MemoryKind::Ddr4)
            .shards(2)
            .build_engine()
            .is_err());
        // DDR3 + a DDR3 preset is the legacy combination: fine.
        assert!(Builder::new()
            .sim_config(SimConfig::test_small())
            .timing(TimingPreset::Ddr3_1066E)
            .memory(MemoryKind::Ddr3)
            .build()
            .is_ok());
    }

    #[test]
    fn memory_rejected_with_baselines() {
        assert!(Builder::new()
            .baseline(BaselineKind::Cuckoo)
            .memory(MemoryKind::Sram)
            .build()
            .is_err());
    }

    #[test]
    fn invalid_memory_spec_surfaces_as_config_error() {
        let mut p = flowlut_ddr3::DramParams::ddr4_2400();
        p.t_ccd_l = 0;
        assert!(Builder::new()
            .sim_config(SimConfig::test_small())
            .memory_spec(MemorySpec::Ddr4(p))
            .build()
            .is_err());
    }

    #[test]
    fn seed_flows_into_table_and_router() {
        let t = Builder::new()
            .table(TableConfig::test_small())
            .seed(99)
            .build_table()
            .unwrap();
        assert_eq!(t.config().hash_seed, 99);
    }

    #[test]
    fn timed_backends_expose_pipelines() {
        let mut sim = Builder::new()
            .sim_config(SimConfig::test_small())
            .timing(TimingPreset::Ddr3_1066E)
            .build()
            .unwrap();
        assert!(sim.as_pipeline().is_some());
        let mut table = Builder::new()
            .table(TableConfig::test_small())
            .build()
            .unwrap();
        assert!(table.as_pipeline().is_none());
    }
}
