//! # flowlut — memory-efficient flow processing on simulated DDR3 SDRAM
//!
//! A full reproduction of *"A Hardware Acceleration Scheme for
//! Memory-Efficient Flow Processing"* (Xin Yang, Sakir Sezer, Shane
//! O'Neill — IEEE SOCC 2014): a network-flow lookup table that reaches
//! 40 GbE-class lookup rates out of commodity DDR3 SDRAM via two-choice
//! Hash-CAM hashing, a dual-path lookup pipeline with early exit, bank
//! aware request scheduling, and burst-grouped updates.
//!
//! The whole workspace speaks one API: every structure — the functional
//! table, the cycle-stepped prototype, the sharded engine, and every
//! related-work baseline — implements the object-safe
//! [`FlowBackend`]/[`FlowStore`] traits (plus [`FlowPipeline`] for the
//! timed ones), is constructed by [`Builder`], and reports runs in one
//! [`RunReport`] shape via the typed [`Session`] handle. Failures fold
//! into the unified [`FlowError`] hierarchy.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — the paper's contribution: the functional
//!   [`HashCamTable`](flowlut_core::HashCamTable) and the cycle-stepped
//!   [`FlowLutSim`](flowlut_core::FlowLutSim);
//! * [`ddr3`] — the DDR3 device + controller timing model;
//! * [`cam`] — binary/ternary CAM models;
//! * [`hash`] — CRC-32 / H3 / Toeplitz hardware hashes;
//! * [`traffic`] — flow keys, workloads, the synthetic
//!   fabric trace, and Ethernet line-rate arithmetic;
//! * [`baselines`] — related-work comparators;
//! * [`analyzer`] — the Figure 7 real-time traffic
//!   analyzer (packet buffer + event engine + stats engine);
//! * [`engine`] — the multi-channel sharded engine: N complete
//!   prototypes behind a hash-based shard router, stepped in lockstep —
//!   the scale-out path past a single channel's ≈44 Mdesc/s saturation;
//! * [`service`] — the long-running flow service: the engine behind a
//!   bounded multi-producer ingest queue with blocking backpressure,
//!   plus checkpoint/restore warm restart and online N→2N rescale;
//! * [`scenarios`] — declarative workload scenarios: builder/TOML specs
//!   composing Zipf, elephant/mice, churn, burst and adversarial
//!   collision stages, executed against any backend by one generic
//!   runner (or in one call via [`Builder::scenario`]).
//!
//! ## Quick start
//!
//! Build any backend with [`Builder`]; the functional [`FlowStore`] verbs
//! work on all of them:
//!
//! ```
//! use flowlut::{Builder, FlowStore};
//! use flowlut::core::TableConfig;
//! use flowlut::traffic::{FiveTuple, FlowKey};
//!
//! let mut table = Builder::new().table(TableConfig::test_small()).build()?;
//! let key = FlowKey::from(FiveTuple::new([10, 0, 0, 1], [10, 0, 0, 2], 80, 443, 6));
//! assert!(table.insert(key)?, "new flow");
//! assert!(table.contains(&key));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Timed backends additionally stream descriptors through a typed,
//! paced [`Session`] (`push`/`tick`/`poll`/`events`/`drain` by hand, or
//! [`Session::run`] for the whole batch):
//!
//! ```
//! use flowlut::{Builder, Session};
//! use flowlut::core::SimConfig;
//! use flowlut::traffic::{FiveTuple, FlowKey, PacketDescriptor};
//!
//! let mut engine = Builder::new()
//!     .sim_config(SimConfig::test_small())
//!     .shards(2)
//!     .build()?;
//! let descs: Vec<PacketDescriptor> =
//!     PacketDescriptor::sequence((0..200).map(|i| FlowKey::from(FiveTuple::from_index(i))));
//! let pipe = engine.as_pipeline().expect("timed backend");
//! let report = Session::new(pipe).run(&descs)?;
//! assert_eq!(report.completed, 200);
//! println!("{} ch x {:.1} Mdesc/s", report.channels, report.mdesc_per_s);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;

pub use builder::{BaselineKind, Builder};
#[allow(deprecated)]
pub use flowlut_core::backend::run_session;
pub use flowlut_core::backend::{
    FlowBackend, FlowEvent, FlowEventKind, FlowPipeline, FlowStore, FullError, OpStats, RunReport,
    Session, SessionError, SessionProgress,
};
pub use flowlut_core::{CheckpointError, ExpiryPolicy, FlowError, PressurePolicy, RescaleError};
pub use flowlut_scenarios::{Scenario, ScenarioReport, ScenarioRunner, StageSpec};

pub use flowlut_analyzer as analyzer;
pub use flowlut_baselines as baselines;
pub use flowlut_cam as cam;
pub use flowlut_core as core;
pub use flowlut_ddr3 as ddr3;
pub use flowlut_engine as engine;
pub use flowlut_hash as hash;
pub use flowlut_scenarios as scenarios;
pub use flowlut_service as service;
pub use flowlut_traffic as traffic;
