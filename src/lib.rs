//! # flowlut — memory-efficient flow processing on simulated DDR3 SDRAM
//!
//! A full reproduction of *"A Hardware Acceleration Scheme for
//! Memory-Efficient Flow Processing"* (Xin Yang, Sakir Sezer, Shane
//! O'Neill — IEEE SOCC 2014): a network-flow lookup table that reaches
//! 40 GbE-class lookup rates out of commodity DDR3 SDRAM via two-choice
//! Hash-CAM hashing, a dual-path lookup pipeline with early exit, bank
//! aware request scheduling, and burst-grouped updates.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — the paper's contribution: the functional
//!   [`HashCamTable`](flowlut_core::HashCamTable) and the cycle-stepped
//!   [`FlowLutSim`](flowlut_core::FlowLutSim);
//! * [`ddr3`] — the DDR3 device + controller timing model;
//! * [`cam`] — binary/ternary CAM models;
//! * [`hash`] — CRC-32 / H3 / Toeplitz hardware hashes;
//! * [`traffic`] — flow keys, workloads, the synthetic
//!   fabric trace, and Ethernet line-rate arithmetic;
//! * [`baselines`] — related-work comparators;
//! * [`analyzer`] — the Figure 7 real-time traffic
//!   analyzer (packet buffer + event engine + stats engine);
//! * [`engine`] — the multi-channel sharded engine: N complete
//!   prototypes behind a hash-based shard router, stepped in lockstep —
//!   the scale-out path past a single channel's ≈44 Mdesc/s saturation.
//!
//! ## Quick start
//!
//! ```
//! use flowlut::core::{HashCamTable, TableConfig};
//! use flowlut::traffic::{FiveTuple, FlowKey};
//!
//! let mut table = HashCamTable::new(TableConfig::test_small());
//! let key = FlowKey::from(FiveTuple::new([10, 0, 0, 1], [10, 0, 0, 2], 80, 443, 6));
//! let (fid, created) = table.lookup_or_insert(key)?;
//! assert!(created);
//! assert_eq!(table.lookup(&key).map(|(id, _)| id), Some(fid));
//! # Ok::<(), flowlut::core::InsertError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use flowlut_analyzer as analyzer;
pub use flowlut_baselines as baselines;
pub use flowlut_cam as cam;
pub use flowlut_core as core;
pub use flowlut_ddr3 as ddr3;
pub use flowlut_engine as engine;
pub use flowlut_hash as hash;
pub use flowlut_traffic as traffic;
